"""Glossy synchronous-transmission floods.

Glossy floods a packet through the whole network within a single slot:
the initiator transmits, every node that receives the packet
retransmits it in the immediately following transmission phase, and
nodes alternate between reception and transmission until they have
transmitted the packet ``N_TX`` times.  Because all retransmitters send
bit-identical packets within sub-microsecond synchronization, concurrent
transmissions interfere constructively (capture effect) and the flood
propagates one hop per phase.

This module simulates a flood at phase granularity: a phase is one
packet airtime plus the RX/TX turnaround.  The simulation produces, for
every participating node, whether it received the packet, in which
phase, how many times it transmitted, and how long its radio stayed on
— exactly the observables Dimmer's feedback loop is built on.
"""

from __future__ import annotations

import math
from collections.abc import Mapping as MappingABC
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.net.interference import InterferenceSource, NoInterference
from repro.net.link import LinkModel
from repro.net.packet import DEFAULT_PACKET_BYTES
from repro.net.radio import RadioModel
from repro.net.topology import Topology


class FloodResult:
    """Outcome of one Glossy flood (one slot).

    Per-node observables are array-backed: they live in NumPy vectors
    aligned with :attr:`node_ids`, which is what lets a full LWB round
    aggregate flood outcomes without per-node Python loops.  The dict
    attributes of the original API — ``received``, ``reception_phase``,
    ``transmissions``, ``radio_on_ms`` — are kept as *lazy views*
    materialized on first access (and cached, so in-place edits through
    a view stay visible to the aggregate properties).

    Results can equivalently be built from per-node dicts (the scalar
    reference engine does); the arrays are then materialized lazily.

    Attributes
    ----------
    initiator:
        Node that originated the flood.
    node_ids:
        Participating nodes, in array index order.
    received_array, reception_phase_array, transmissions_array, radio_on_array:
        Per-node observables in :attr:`node_ids` order.  A reception
        phase of ``-1`` encodes "never received" (``None`` in the dict
        view).
    received, reception_phase, transmissions, radio_on_ms:
        Dict views of the same observables, keyed by node id.
    slot_duration_ms:
        Slot length the flood was executed in.
    channel:
        Channel the flood was executed on.
    """

    __slots__ = (
        "initiator",
        "node_ids",
        "slot_duration_ms",
        "channel",
        "_received_arr",
        "_phase_arr",
        "_tx_arr",
        "_radio_arr",
        "_received_map",
        "_phase_map",
        "_tx_map",
        "_radio_map",
    )

    def __init__(
        self,
        initiator: int,
        received: Union[Mapping[int, bool], np.ndarray],
        reception_phase: Union[Mapping[int, Optional[int]], np.ndarray],
        transmissions: Union[Mapping[int, int], np.ndarray],
        radio_on_ms: Union[Mapping[int, float], np.ndarray],
        slot_duration_ms: float,
        channel: int,
        node_ids: Optional[Sequence[int]] = None,
    ) -> None:
        self.initiator = initiator
        self.slot_duration_ms = slot_duration_ms
        self.channel = channel
        if isinstance(received, MappingABC):
            self.node_ids = tuple(received)
            self._received_map = received if isinstance(received, dict) else dict(received)
            self._phase_map = (
                reception_phase if isinstance(reception_phase, dict) else dict(reception_phase)
            )
            self._tx_map = transmissions if isinstance(transmissions, dict) else dict(transmissions)
            self._radio_map = radio_on_ms if isinstance(radio_on_ms, dict) else dict(radio_on_ms)
            self._received_arr = None
            self._phase_arr = None
            self._tx_arr = None
            self._radio_arr = None
        else:
            if node_ids is None:
                raise ValueError("node_ids is required for array-backed construction")
            self.node_ids = tuple(node_ids)
            self._received_arr = np.asarray(received, dtype=bool)
            self._phase_arr = np.asarray(reception_phase, dtype=np.int64)
            self._tx_arr = np.asarray(transmissions, dtype=np.int64)
            self._radio_arr = np.asarray(radio_on_ms, dtype=float)
            self._received_map = None
            self._phase_map = None
            self._tx_map = None
            self._radio_map = None

    # ------------------------------------------------------------------
    # Array accessors
    # ------------------------------------------------------------------
    @property
    def received_array(self) -> np.ndarray:
        """Per-node reception flags in :attr:`node_ids` order."""
        if self._received_arr is None:
            self._received_arr = np.fromiter(
                (bool(self._received_map[n]) for n in self.node_ids),
                dtype=bool,
                count=len(self.node_ids),
            )
        return self._received_arr

    @property
    def reception_phase_array(self) -> np.ndarray:
        """Per-node first-reception phases (``-1`` = never received)."""
        if self._phase_arr is None:
            self._phase_arr = np.fromiter(
                (
                    -1 if self._phase_map[n] is None else int(self._phase_map[n])
                    for n in self.node_ids
                ),
                dtype=np.int64,
                count=len(self.node_ids),
            )
        return self._phase_arr

    @property
    def transmissions_array(self) -> np.ndarray:
        """Per-node transmission counts in :attr:`node_ids` order."""
        if self._tx_arr is None:
            self._tx_arr = np.fromiter(
                (int(self._tx_map[n]) for n in self.node_ids),
                dtype=np.int64,
                count=len(self.node_ids),
            )
        return self._tx_arr

    @property
    def radio_on_array(self) -> np.ndarray:
        """Per-node radio-on times in :attr:`node_ids` order."""
        if self._radio_arr is None:
            self._radio_arr = np.fromiter(
                (float(self._radio_map[n]) for n in self.node_ids),
                dtype=float,
                count=len(self.node_ids),
            )
        return self._radio_arr

    # ------------------------------------------------------------------
    # Dict views (API-compatibility shims)
    # ------------------------------------------------------------------
    @property
    def received(self) -> Dict[int, bool]:
        """Per-node flag: did the node decode the packet at least once?"""
        if self._received_map is None:
            self._received_map = dict(zip(self.node_ids, self._received_arr.tolist()))
        return self._received_map

    @property
    def reception_phase(self) -> Dict[int, Optional[int]]:
        """Phase index of the first successful reception (``None`` = never)."""
        if self._phase_map is None:
            self._phase_map = {
                node: (phase if phase >= 0 else None)
                for node, phase in zip(self.node_ids, self._phase_arr.tolist())
            }
        return self._phase_map

    @property
    def transmissions(self) -> Dict[int, int]:
        """Number of times each node transmitted the packet."""
        if self._tx_map is None:
            self._tx_map = dict(zip(self.node_ids, self._tx_arr.tolist()))
        return self._tx_map

    @property
    def radio_on_ms(self) -> Dict[int, float]:
        """Radio-on time of each node during the slot."""
        if self._radio_map is None:
            self._radio_map = dict(zip(self.node_ids, self._radio_arr.tolist()))
        return self._radio_map

    def received_at(self, node: int) -> bool:
        """Whether ``node`` decoded the packet, without materializing dicts.

        Nodes absent from the flood count as not received.  A
        materialized ``received`` view wins once it exists (views are
        the mutable face of the result), so in-place edits stay visible.
        """
        if self._received_map is not None:
            return bool(self._received_map.get(node, False))
        try:
            index = self.node_ids.index(node)
        except ValueError:
            return False
        return bool(self._received_arr[index])

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def reliability(self) -> float:
        """Fraction of non-initiator participants that received the packet."""
        if self._received_map is not None:
            # Dict views are the mutable face of the result (tests patch
            # receptions in place), so they win once materialized.
            destinations = [n for n in self._received_map if n != self.initiator]
            if not destinations:
                return 1.0
            return sum(1 for n in destinations if self._received_map[n]) / len(destinations)
        arr = self._received_arr
        try:
            initiator_pos = self.node_ids.index(self.initiator)
        except ValueError:
            # The initiator is not among the participants (an empty slot
            # whose source missed the schedule): every node counts as a
            # destination, matching the dict formula above.
            if arr.shape[0] == 0:
                return 1.0
            return int(arr.sum()) / arr.shape[0]
        if arr.shape[0] <= 1:
            return 1.0
        initiator_ok = bool(arr[initiator_pos])
        return (int(arr.sum()) - initiator_ok) / (arr.shape[0] - 1)

    @property
    def average_radio_on_ms(self) -> float:
        """Radio-on time averaged over every participant."""
        if self._radio_map is not None:
            if not self._radio_map:
                return 0.0
            return sum(self._radio_map.values()) / len(self._radio_map)
        if self._radio_arr.shape[0] == 0:
            return 0.0
        return float(self._radio_arr.mean())

    def receivers(self) -> List[int]:
        """Sorted list of nodes that successfully received the packet."""
        if self._received_map is not None:
            return sorted(n for n, ok in self._received_map.items() if ok)
        return sorted(np.asarray(self.node_ids)[self._received_arr].tolist())

    def non_receivers(self) -> List[int]:
        """Sorted list of nodes that never received the packet."""
        if self._received_map is not None:
            return sorted(n for n, ok in self._received_map.items() if not ok)
        return sorted(np.asarray(self.node_ids)[~self._received_arr].tolist())

    @classmethod
    def empty(
        cls,
        initiator: int,
        node_ids: Sequence[int],
        slot_duration_ms: float,
        channel: int,
        radio_on_ms: float = 0.0,
    ) -> "FloodResult":
        """A flood in which nothing was received or transmitted.

        Used for slots whose source missed the schedule: every listed
        node idles for ``radio_on_ms`` and nobody decodes anything.
        """
        n = len(node_ids)
        return cls(
            initiator=initiator,
            received=np.zeros(n, dtype=bool),
            reception_phase=np.full(n, -1, dtype=np.int64),
            transmissions=np.zeros(n, dtype=np.int64),
            radio_on_ms=np.full(n, float(radio_on_ms)),
            slot_duration_ms=slot_duration_ms,
            channel=channel,
            node_ids=node_ids,
        )


#: Flood engine implementations selectable via ``SimulatorConfig.engine``.
#: ``"vectorized-log"`` behaves exactly like ``"vectorized"`` except in
#: :meth:`GlossyFlood.run_batch`, where it assembles the multi-transmitter
#: reception probabilities through one log-domain matmul per phase
#: (approximate to ~1e-12, targeted at 1000+ node topologies where BLAS
#: beats the exact gather-product kernel).
FLOOD_ENGINES = ("scalar", "vectorized", "vectorized-log")

#: Batched reception-probability kernels of the vectorized batch path.
#: ``"batched"`` evaluates a whole phase's (flood, receiver) grid with one
#: segmented masked product; ``"per-flood"`` is the PR 3 reference loop
#: (one ``failure[tx].prod(axis=0)`` per flood), kept selectable for the
#: in-run benchmark ratio and for kernel-parity tests.
RECEPTION_KERNELS = ("batched", "per-flood")

#: Element budget of one gathered transmitter-row chunk in the batched
#: kernel (float64 count, ~2 MB): keeps the gather and its product
#: inside the cache and the reusable workspace small, without changing
#: results (chunking splits the flood axis, never a flood's factors).
KERNEL_CHUNK_ELEMENTS = 262_144

#: Minimum (floods x undecided listeners) row size, in float64
#: elements, for the streaming-accumulator variant of the exact kernel;
#: smaller rows are dispatch-bound and take the chunked gather+reduce.
KERNEL_STREAM_MIN_ROW = 3_072


def _finish_pending_transmissions(
    next_tx: np.ndarray,
    transmissions: np.ndarray,
    n_tx_vec: np.ndarray,
    off_after: np.ndarray,
    on_air: np.ndarray,
    num_phases: int,
    flood_mask: Optional[np.ndarray] = None,
) -> None:
    """Replay the deterministic tail of fully-decoded floods in closed form.

    Once every on-air node of a flood has decoded, no future draw can
    change any state: receptions are no-ops (``received`` is full) and
    re-arming requires an unarmed node, but every on-air node with
    budget left is armed.  Pending transmitters therefore just
    alternate — transmit at ``next_tx``, then every second phase —
    until their budget is spent (radio off right after the last
    transmission) or the slot ends (radio stays on).  Applying that
    schedule directly is bit-identical to iterating the leftover
    phases.  Armed nodes always satisfy ``transmissions < n_tx_vec``
    (spending the budget disarms and switches off in the same phase),
    so the remaining budget below is at least 1.

    ``flood_mask`` restricts the replay to the flagged rows of the
    ``(K, N)`` state arrays, so individual floods retire from the batch
    as soon as they decode while undecided floods keep iterating (their
    draws were generated up front, so their streams are unaffected).
    """
    pending = next_tx >= 0
    if flood_mask is not None:
        pending &= flood_mask[:, None]
    if not pending.any():
        return
    first = next_tx[pending]
    remaining = (n_tx_vec - transmissions)[pending]
    fits = np.maximum(0, (num_phases - first + 1) // 2)
    executed = np.minimum(remaining, fits)
    transmissions[pending] += executed
    finished = executed == remaining
    last_phase = first + 2 * (remaining - 1)
    off_after[pending] = np.where(finished, last_phase + 1, np.int64(-1))
    next_tx[pending] = -1
    # Every on-air node of a decided flood is armed (and therefore
    # pending), so this leaves the flood entirely off air — the later
    # phases' ``done`` bookkeeping must not touch its replayed
    # ``off_after`` values.
    on_air &= ~pending


class GlossyFlood:
    """Phase-level simulator of a single Glossy flood.

    Parameters
    ----------
    topology:
        Deployment the flood runs over.
    link_model:
        Link-quality model used for per-phase reception draws.
    radio:
        Radio timing/energy model (phase duration, maximum slot length).
    rng:
        Random generator used for reception draws; pass a seeded
        generator for reproducible floods.
    engine:
        ``"scalar"`` runs the per-node reference implementation;
        ``"vectorized"`` advances each phase with NumPy state vectors
        and batched reception draws (statistically equivalent, much
        faster on large topologies); ``"vectorized-log"`` additionally
        switches :meth:`run_batch` to the log-domain matmul kernel
        (approximate-but-close, for 1000+ node topologies).
    """

    def __init__(
        self,
        topology: Topology,
        link_model: Optional[LinkModel] = None,
        radio: Optional[RadioModel] = None,
        rng: Optional[np.random.Generator] = None,
        engine: str = "scalar",
    ) -> None:
        self.topology = topology
        self.link_model = link_model if link_model is not None else LinkModel(topology)
        self.radio = radio if radio is not None else RadioModel()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.engine = engine  # validated by the property setter
        self._reception_kernel = "batched"
        #: Failure matrix with an all-ones padding row, cached for the
        #: batched kernel (see :meth:`_failure_padded`).
        self._failure_padded_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        #: Reusable kernel workspaces (fresh per-phase temporaries cost
        #: more in page faults than the arithmetic they carry).
        self._workspaces: Dict[str, np.ndarray] = {}
        #: Node ids in ``LinkModel.prr_matrix`` index order.
        self.node_ids: Tuple[int, ...] = tuple(topology.node_ids)
        self._ids_arr = np.array(self.node_ids, dtype=np.int64)
        self._n = len(self.node_ids)
        #: Node coordinates in matrix index order, used for batched
        #: interference-penalty evaluation.
        self._coords = np.array(
            [topology.positions[node] for node in self.node_ids], dtype=float
        )

    @property
    def engine(self) -> str:
        """Flood engine implementation (see :data:`FLOOD_ENGINES`).

        Assignment is validated so a misspelled engine can never
        silently select the default vectorized path.
        """
        return self._engine

    @engine.setter
    def engine(self, value: str) -> None:
        if value not in FLOOD_ENGINES:
            raise ValueError(f"engine must be one of {FLOOD_ENGINES}, got {value!r}")
        self._engine = value

    @property
    def reception_kernel(self) -> str:
        """Batched-path reception kernel (see :data:`RECEPTION_KERNELS`).

        The default ``"batched"`` is bit-for-bit identical to the
        ``"per-flood"`` reference loop, which benchmarks re-select for
        the in-run speedup ratio; assignment is validated so a typo
        cannot silently fall back to the default kernel.
        """
        return self._reception_kernel

    @reception_kernel.setter
    def reception_kernel(self, value: str) -> None:
        if value not in RECEPTION_KERNELS:
            raise ValueError(
                f"reception_kernel must be one of {RECEPTION_KERNELS}, got {value!r}"
            )
        self._reception_kernel = value

    def _normalize_n_tx(
        self,
        n_tx: Union[int, Mapping[int, int], np.ndarray],
        participants: Sequence[int],
    ) -> Dict[int, int]:
        """Expand a global N_TX value into a per-node mapping."""
        if isinstance(n_tx, (int, np.integer)):
            if n_tx < 0:
                raise ValueError("n_tx must be non-negative")
            return {node: int(n_tx) for node in participants}
        if isinstance(n_tx, np.ndarray):
            index = self.link_model.node_index
            vec = self._n_tx_vector(n_tx, None, None)
            return {node: int(vec[index[node]]) for node in participants}
        per_node = {}
        for node in participants:
            value = n_tx.get(node, 0)
            if value < 0:
                raise ValueError("n_tx must be non-negative")
            per_node[node] = value
        return per_node

    def _n_tx_vector(
        self,
        n_tx: Union[int, Mapping[int, int], np.ndarray],
        part_mask: Optional[np.ndarray],
        part_list: Optional[List[int]],
    ) -> np.ndarray:
        """Expand N_TX into a per-node vector in matrix index order.

        Non-participant entries are zeroed; they are never consumed by
        the engine, but zeroing keeps the vector meaning unambiguous.
        """
        index = self.link_model.node_index
        if isinstance(n_tx, (int, np.integer)):
            if n_tx < 0:
                raise ValueError("n_tx must be non-negative")
            if part_mask is None:
                return np.full(self._n, int(n_tx), dtype=np.int64)
            return np.where(part_mask, np.int64(n_tx), np.int64(0))
        if isinstance(n_tx, np.ndarray):
            vec = np.asarray(n_tx, dtype=np.int64)
            if vec.shape != (self._n,):
                raise ValueError("per-node n_tx vector must have one entry per node")
            if (vec < 0).any():
                raise ValueError("n_tx must be non-negative")
            if part_mask is None:
                return vec.copy()
            return np.where(part_mask, vec, np.int64(0))
        vec = np.zeros(self._n, dtype=np.int64)
        if part_list is None:
            part_list = (
                list(self.node_ids)
                if part_mask is None
                else self._ids_arr[part_mask].tolist()
            )
        for node in part_list:
            value = n_tx.get(node, 0)
            if value < 0:
                raise ValueError("n_tx must be non-negative")
            vec[index[node]] = value
        return vec

    def run(
        self,
        initiator: int,
        n_tx: Union[int, Mapping[int, int], np.ndarray] = 3,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
        channel: int = 26,
        start_ms: float = 0.0,
        interference: Optional[InterferenceSource] = None,
        participants: Optional[Union[Sequence[int], np.ndarray]] = None,
        max_slot_ms: Optional[float] = None,
    ) -> FloodResult:
        """Simulate one Glossy flood and return its outcome.

        Parameters
        ----------
        initiator:
            The node that starts the flood (owns the data slot).
        n_tx:
            A single retransmission count applied to every node, a
            per-node mapping (the forwarder-selection case, where
            passive receivers use 0), or a per-node int vector in
            topology index order.  The initiator always transmits at
            least once, otherwise no flood would take place.
        packet_bytes:
            Total wire size of the flooded packet.
        channel:
            IEEE 802.15.4 channel of the slot.
        start_ms:
            Slot start on the global clock; used to align interference
            bursts with the flood's phases.
        interference:
            Interference source (defaults to none).
        participants:
            Nodes taking part in the slot: a sequence of node ids or a
            boolean mask in topology index order (defaults to every
            node); non-participants keep their radio off and cannot
            receive.
        max_slot_ms:
            Slot length; the flood is truncated when it runs out of slot.
        """
        index = self.link_model.node_index
        part_mask: Optional[np.ndarray] = None
        part_list: Optional[List[int]] = None
        if participants is None:
            if initiator not in index:
                raise ValueError(f"initiator {initiator} is not among the participants")
        elif isinstance(participants, np.ndarray) and participants.dtype == np.bool_:
            part_mask = participants
            if part_mask.shape != (self._n,):
                raise ValueError("participant mask must have one entry per node")
            if not part_mask[index[initiator]]:
                raise ValueError(f"initiator {initiator} is not among the participants")
            if bool(part_mask.all()):
                part_mask = None  # full participation: use the fast path
        else:
            part_list = list(participants)
            if initiator not in part_list:
                raise ValueError(f"initiator {initiator} is not among the participants")
            part_mask = np.zeros(self._n, dtype=bool)
            for node in part_list:
                part_mask[index[node]] = True
        interference = interference if interference is not None else NoInterference()
        slot_ms = max_slot_ms if max_slot_ms is not None else self.radio.max_slot_ms

        phase_ms = self.radio.phase_duration_ms(packet_bytes)
        num_phases = max(1, int(math.floor(slot_ms / phase_ms)))

        if self.engine != "scalar":
            # "vectorized-log" only changes the batched kernel; a single
            # flood always runs the exact vectorized path.
            n_tx_vec = self._n_tx_vector(n_tx, part_mask, part_list)
            init_idx = index[initiator]
            n_tx_vec[init_idx] = max(1, n_tx_vec[init_idx])
            return self._run_vectorized(
                initiator=initiator,
                part_mask=part_mask,
                n_tx_vec=n_tx_vec,
                channel=channel,
                start_ms=start_ms,
                interference=interference,
                slot_ms=slot_ms,
                phase_ms=phase_ms,
                num_phases=num_phases,
            )

        if part_list is None:
            part_list = (
                list(self.node_ids)
                if part_mask is None
                else self._ids_arr[part_mask].tolist()
            )
        per_node_n_tx = self._normalize_n_tx(n_tx, part_list)
        # The initiator must transmit at least once for the flood to exist.
        per_node_n_tx[initiator] = max(1, per_node_n_tx[initiator])
        return self._run_scalar(
            initiator=initiator,
            participants=part_list,
            per_node_n_tx=per_node_n_tx,
            channel=channel,
            start_ms=start_ms,
            interference=interference,
            slot_ms=slot_ms,
            phase_ms=phase_ms,
            num_phases=num_phases,
        )

    def run_batch(
        self,
        initiators: Sequence[int],
        n_tx: Union[int, Mapping[int, int], np.ndarray],
        packet_bytes: int = DEFAULT_PACKET_BYTES,
        channels: Union[int, Sequence[int]] = 26,
        start_times: Union[float, Sequence[float]] = 0.0,
        interference: Optional[InterferenceSource] = None,
        participants: Optional[np.ndarray] = None,
        max_slot_ms: Optional[float] = None,
    ) -> List[FloodResult]:
        """Simulate several independent floods in one batched phase loop.

        The floods of one LWB round's data slots never interact — they
        share the participant set and the per-node ``n_tx`` budget but
        differ only in initiator, channel and start time — so the whole
        group can advance through the phase loop together with ``(K, N)``
        state arrays, amortizing the per-phase NumPy dispatch overhead
        across the batch.

        Under the ``"vectorized"`` engine the result list is
        **bit-for-bit identical** to calling :meth:`run` once per flood
        in order under the same generator: the random draws are
        generated flood by flood (preserving the stream), and every
        per-phase update applies the same arithmetic to the same values
        — including the batched reception kernel, whose masked products
        interleave only exact ``* 1.0`` factors with the per-flood
        products, and the flood-level early exit, which replays the
        deterministic tail of fully-decoded floods in closed form.  The
        ``"vectorized-log"`` engine swaps the multi-transmitter product
        for one log-domain matmul per phase (approximate to ~1e-12 in
        the probabilities, so individual draws may flip); the scalar
        engine simply loops :meth:`run`.

        Parameters
        ----------
        initiators:
            Initiating node of each flood, in execution order.
        n_tx:
            Shared retransmission budget (any form :meth:`run` accepts);
            each flood's initiator transmits at least once.
        channels, start_times:
            Per-flood channel / slot start, or one value for all floods.
        participants:
            Optional boolean participation mask shared by all floods.
        """
        count = len(initiators)
        channel_list = (
            [int(channels)] * count
            if isinstance(channels, (int, np.integer))
            else [int(c) for c in channels]
        )
        start_list = (
            [float(start_times)] * count
            if isinstance(start_times, (int, float, np.floating))
            else [float(t) for t in start_times]
        )
        if len(channel_list) != count or len(start_list) != count:
            raise ValueError("channels and start_times must match initiators")
        if self.engine == "scalar" or count <= 1:
            return [
                self.run(
                    initiator=initiator,
                    n_tx=n_tx,
                    packet_bytes=packet_bytes,
                    channel=channel_list[k],
                    start_ms=start_list[k],
                    interference=interference,
                    participants=participants,
                    max_slot_ms=max_slot_ms,
                )
                for k, initiator in enumerate(initiators)
            ]

        index = self.link_model.node_index
        part_mask: Optional[np.ndarray] = None
        if participants is not None:
            part_mask = np.asarray(participants, dtype=bool)
            if part_mask.shape != (self._n,):
                raise ValueError("participant mask must have one entry per node")
            if bool(part_mask.all()):
                part_mask = None
        init_rows = []
        for initiator in initiators:
            row = index.get(initiator)
            if row is None or (part_mask is not None and not part_mask[row]):
                raise ValueError(f"initiator {initiator} is not among the participants")
            init_rows.append(row)
        interference = interference if interference is not None else NoInterference()
        slot_ms = max_slot_ms if max_slot_ms is not None else self.radio.max_slot_ms
        phase_ms = self.radio.phase_duration_ms(packet_bytes)
        num_phases = max(1, int(math.floor(slot_ms / phase_ms)))

        base_n_tx = self._n_tx_vector(n_tx, part_mask, None)
        return self._run_vectorized_batch(
            initiators=list(initiators),
            init_rows=np.array(init_rows, dtype=np.int64),
            part_mask=part_mask,
            base_n_tx=base_n_tx,
            channels=channel_list,
            start_times=start_list,
            interference=interference,
            slot_ms=slot_ms,
            phase_ms=phase_ms,
            num_phases=num_phases,
        )

    def _run_scalar(
        self,
        initiator: int,
        participants: List[int],
        per_node_n_tx: Dict[int, int],
        channel: int,
        start_ms: float,
        interference: InterferenceSource,
        slot_ms: float,
        phase_ms: float,
        num_phases: int,
    ) -> FloodResult:
        """Reference implementation: per-node dict bookkeeping."""
        received: Dict[int, bool] = {node: False for node in participants}
        reception_phase: Dict[int, Optional[int]] = {node: None for node in participants}
        transmissions: Dict[int, int] = {node: 0 for node in participants}
        #: Phase in which a node transmits next (None = not scheduled yet).
        next_tx_phase: Dict[int, Optional[int]] = {node: None for node in participants}
        #: Phase after which the node switched its radio off (exclusive).
        off_after_phase: Dict[int, Optional[int]] = {node: None for node in participants}

        received[initiator] = True
        reception_phase[initiator] = 0
        next_tx_phase[initiator] = 0

        for phase in range(num_phases):
            transmitters = [
                node
                for node in participants
                if next_tx_phase[node] == phase
                and transmissions[node] < per_node_n_tx[node]
                and off_after_phase[node] is None
            ]
            # Listeners: radio on, not transmitting in this phase.
            listeners = [
                node
                for node in participants
                if node not in transmitters and off_after_phase[node] is None
            ]
            phase_start = start_ms + phase * phase_ms
            if transmitters:
                for node in listeners:
                    penalty = interference.penalty(
                        self.topology.positions[node], phase_start, phase_ms, channel
                    )
                    probability = self.link_model.reception_probability(
                        transmitters, node, interference_penalty=penalty
                    )
                    if probability > 0.0 and self.rng.random() < probability:
                        if not received[node]:
                            received[node] = True
                            reception_phase[node] = phase
                        # Glossy re-synchronizes on every reception: schedule
                        # (or re-arm) the next transmission for the following
                        # phase if the node still has transmissions left.
                        if (
                            transmissions[node] < per_node_n_tx[node]
                            and next_tx_phase[node] is None
                        ):
                            next_tx_phase[node] = phase + 1

            for node in transmitters:
                transmissions[node] += 1
                if transmissions[node] < per_node_n_tx[node]:
                    # Alternate: listen next phase, transmit the one after.
                    next_tx_phase[node] = phase + 2
                else:
                    next_tx_phase[node] = None
                    off_after_phase[node] = phase + 1

            # Nodes that have received and have nothing left to transmit can
            # switch off: passive receivers (N_TX = 0) right after their first
            # reception, forwarders once their transmission budget is spent.
            for node in participants:
                if off_after_phase[node] is not None:
                    continue
                if received[node] and per_node_n_tx[node] == 0:
                    off_after_phase[node] = phase + 1
                elif (
                    received[node]
                    and transmissions[node] >= per_node_n_tx[node]
                    and next_tx_phase[node] is None
                ):
                    off_after_phase[node] = phase + 1

        radio_on_ms: Dict[int, float] = {}
        for node in participants:
            off = off_after_phase[node]
            on_phases = num_phases if off is None else min(off, num_phases)
            radio_on_ms[node] = min(slot_ms, on_phases * phase_ms)

        return FloodResult(
            initiator=initiator,
            received=received,
            reception_phase=reception_phase,
            transmissions=transmissions,
            radio_on_ms=radio_on_ms,
            slot_duration_ms=slot_ms,
            channel=channel,
        )

    def _run_vectorized(
        self,
        initiator: int,
        part_mask: Optional[np.ndarray],
        n_tx_vec: np.ndarray,
        channel: int,
        start_ms: float,
        interference: InterferenceSource,
        slot_ms: float,
        phase_ms: float,
        num_phases: int,
    ) -> FloodResult:
        """NumPy formulation: one phase is a handful of matrix operations.

        State lives in per-node vectors aligned with the
        :meth:`~repro.net.link.LinkModel.prr_matrix` index order; every
        phase draws all reception outcomes in one batched RNG call, and
        the interference penalties of the whole slot are precomputed as
        one :meth:`~repro.net.interference.InterferenceSource.penalty_timeline`
        before the phase loop.  The per-phase logic mirrors
        :meth:`_run_scalar` exactly — only the RNG consumption pattern
        differs, so results are statistically (not bit-for-bit)
        identical under a fixed seed.
        """
        index = self.link_model.node_index
        n_all = self._n

        received = np.zeros(n_all, dtype=bool)
        reception_phase = np.full(n_all, -1, dtype=np.int64)
        transmissions = np.zeros(n_all, dtype=np.int64)
        next_tx = np.full(n_all, -1, dtype=np.int64)  # -1 = not scheduled
        off_after = np.full(n_all, -1, dtype=np.int64)  # -1 = radio still on

        init_idx = index[initiator]
        received[init_idx] = True
        reception_phase[init_idx] = 0
        next_tx[init_idx] = 0

        # One batched draw for the whole slot: row ``p`` serves phase ``p``.
        draws = self.rng.random((num_phases, n_all))
        prr = self.link_model.prr_matrix()
        link_failure = self.link_model._failure_matrix
        boost_factor = 1.0 + self.link_model.capture_boost
        no_interference = isinstance(interference, NoInterference)
        if not no_interference:
            # The whole slot's burst-overlap timeline in one evaluation,
            # instead of one penalty_batch call per phase.
            penalty_timeline = interference.penalty_timeline(
                self._coords, start_ms, phase_ms, num_phases, channel
            )
            # A row of zeros multiplies the probabilities by exactly 1.0,
            # so skipping it is bit-identical and spares two vector
            # operations for every clean phase of the slot.
            penalized_phases = penalty_timeline.any(axis=1)
        # Participants whose radio is still on.
        on_air = np.ones(n_all, dtype=bool) if part_mask is None else part_mask.copy()
        for phase in range(num_phases):
            # An armed node is always still on air (arming requires the
            # radio on, and armed nodes neither spend out nor finish
            # before their transmission), so the schedule alone decides.
            transmit = next_tx == phase
            tx_indices = transmit.nonzero()[0]
            num_tx = len(tx_indices)
            if not num_tx:
                # Nobody transmits: no state can change this phase, and
                # the pending-transmission check below already ran after
                # the last state change, so skip straight ahead.
                continue
            # Inlined LinkModel.reception_probabilities (the method
            # itself stays the reference for property tests): the
            # reception fails only if every non-self link fails, with
            # the capture boost rewarding >1 synchronized senders.
            if num_tx == 1:
                probabilities = prr[tx_indices[0]]
            else:
                # Values at transmitter indices diverge from the
                # reference method (no per-transmitter boost
                # exception) but are never consumed: transmitters
                # are masked out of ``success`` below.
                probabilities = 1.0 - link_failure[tx_indices].prod(axis=0)
                probabilities *= boost_factor
                np.minimum(probabilities, 1.0, out=probabilities)
            if not no_interference and penalized_phases[phase]:
                probabilities = probabilities * (1.0 - penalty_timeline[phase])
            # Transmitters cannot listen (transmit is a subset of
            # on_air, so the XOR is exactly "on air and not sending");
            # a draw >= probability fails.
            success = (draws[phase] < probabilities) & (on_air ^ transmit)
            newly = success & ~received
            received |= newly
            reception_phase[newly] = phase
            # Glossy re-synchronizes on every reception: (re-)arm the
            # next transmission if the node has transmissions left.
            rearm = success & (transmissions < n_tx_vec) & (next_tx < 0)
            next_tx[rearm] = phase + 1

            transmissions[tx_indices] += 1
            budget_spent = transmissions >= n_tx_vec
            spent = transmit & budget_spent
            again = transmit ^ spent  # spent is a subset of transmit
            next_tx[again] = phase + 2  # listen next phase, send after
            next_tx[spent] = -1
            off_after[spent] = phase + 1
            on_air ^= spent  # spent is a subset of on_air

            # Receivers with nothing left to send switch off: passive
            # receivers (N_TX = 0 means their budget is spent from the
            # start) right after their first reception, forwarders once
            # their budget is spent and no transmission is armed.
            done = on_air & received & budget_spent & (next_tx < 0)
            if done.any():
                off_after[done] = phase + 1
                on_air ^= done  # done is a subset of on_air

            if not (next_tx >= 0).any():
                # No transmission is pending anywhere: no state can change
                # in later phases (nodes still listening stay on until the
                # end of the slot, which the radio-on accounting below
                # covers), so the phase loop can stop early.
                break

        on_phases = np.where(off_after < 0, num_phases, np.minimum(off_after, num_phases))
        radio_on = np.minimum(slot_ms, on_phases * phase_ms)

        if part_mask is None:
            return FloodResult(
                initiator=initiator,
                received=received,
                reception_phase=reception_phase,
                transmissions=transmissions,
                radio_on_ms=radio_on,
                slot_duration_ms=slot_ms,
                channel=channel,
                node_ids=self.node_ids,
            )
        rows = np.flatnonzero(part_mask)
        return FloodResult(
            initiator=initiator,
            received=received[rows],
            reception_phase=reception_phase[rows],
            transmissions=transmissions[rows],
            radio_on_ms=radio_on[rows],
            slot_duration_ms=slot_ms,
            channel=channel,
            node_ids=self._ids_arr[rows].tolist(),
        )

    def _run_vectorized_batch(
        self,
        initiators: List[int],
        init_rows: np.ndarray,
        part_mask: Optional[np.ndarray],
        base_n_tx: np.ndarray,
        channels: List[int],
        start_times: List[float],
        interference: InterferenceSource,
        slot_ms: float,
        phase_ms: float,
        num_phases: int,
    ) -> List[FloodResult]:
        """Advance ``K`` independent floods through one shared phase loop.

        State lives in ``(K, N)`` arrays (one row per flood); every
        per-phase operation of :meth:`_run_vectorized` maps onto the
        batch unchanged — including the reception-probability assembly,
        which the batched kernel evaluates for the whole phase's
        (flood, receiver) grid in constant Python overhead (see
        :meth:`_phase_success_batched`).  Floods without a transmitter
        in a given phase get an all-zero probability row, which makes
        every update a no-op for them — exactly the phases
        :meth:`_run_vectorized` skips — so batch results equal
        sequential results bit for bit.  Interference penalties apply as
        one ``(K, N)`` multiply per phase (rows without a burst multiply
        by exactly ``1.0``), and once every flood is either inert or
        fully decoded the remaining transmission schedule is applied in
        closed form instead of iterating the leftover phases.
        """
        n_all = self._n
        count = len(initiators)
        arange_k = np.arange(count)

        received = np.zeros((count, n_all), dtype=bool)
        reception_phase = np.full((count, n_all), -1, dtype=np.int64)
        transmissions = np.zeros((count, n_all), dtype=np.int64)
        next_tx = np.full((count, n_all), -1, dtype=np.int64)
        off_after = np.full((count, n_all), -1, dtype=np.int64)

        n_tx_vec = np.broadcast_to(base_n_tx, (count, n_all)).copy()
        n_tx_vec[arange_k, init_rows] = np.maximum(1, n_tx_vec[arange_k, init_rows])

        received[arange_k, init_rows] = True
        reception_phase[arange_k, init_rows] = 0
        next_tx[arange_k, init_rows] = 0

        # One batched draw per flood, in flood order: the generator
        # stream is consumed exactly as by sequential :meth:`run` calls.
        draws = np.stack(
            [self.rng.random((num_phases, n_all)) for _ in range(count)], axis=1
        )  # (num_phases, K, N)
        prr = self.link_model.prr_matrix()
        link_failure = self.link_model._failure_matrix
        boost_factor = 1.0 + self.link_model.capture_boost
        no_interference = isinstance(interference, NoInterference)
        if not no_interference:
            # One evaluation covers every (flood, phase) window of the
            # batch; each row equals the corresponding row of the
            # per-flood ``penalty_timeline`` call.
            phase_offsets = phase_ms * np.arange(num_phases)
            window_starts = (np.asarray(start_times)[:, None] + phase_offsets).ravel()
            window_channels = np.repeat(np.asarray(channels, dtype=np.int64), num_phases)
            windows = interference.penalty_windows(
                self._coords, window_starts, phase_ms, window_channels
            )
            timelines = windows.reshape(count, num_phases, n_all).transpose(1, 0, 2)
            penalized_phases = timelines.any(axis=2)  # (num_phases, K)

        if part_mask is None:
            on_air = np.ones((count, n_all), dtype=bool)
        else:
            on_air = np.broadcast_to(part_mask, (count, n_all)).copy()
        per_flood_kernel = self.engine == "vectorized" and (
            self.reception_kernel == "per-flood"
        )
        log_failure = (
            self.link_model.log_failure_matrix()
            if self.engine == "vectorized-log"
            else None
        )
        probabilities = np.zeros((count, n_all))
        stale_rows: List[int] = []
        for phase in range(num_phases):
            transmit = next_tx == phase
            tx_counts = transmit.sum(axis=1)
            active = np.flatnonzero(tx_counts)
            if len(active) == 0:
                # No flood transmits: no state can change this phase.
                continue
            if per_flood_kernel:
                # PR 3 reference: one probability row at a time (each
                # flood has its own transmitter set); inactive floods
                # keep an all-zero row, turning every update below into
                # a no-op for them.  Rows written in an earlier phase
                # are zeroed individually — rows of floods active again
                # get overwritten below anyway.
                active_set = set(active.tolist())
                for k in stale_rows:
                    if k not in active_set:
                        probabilities[k] = 0.0
                stale_rows = active.tolist()
                for k in active:
                    tx_indices = transmit[k].nonzero()[0]
                    row = probabilities[k]
                    if len(tx_indices) == 1:
                        np.copyto(row, prr[tx_indices[0]])
                    else:
                        np.subtract(1.0, link_failure[tx_indices].prod(axis=0), out=row)
                        row *= boost_factor
                        np.minimum(row, 1.0, out=row)
                    if not no_interference and penalized_phases[phase, k]:
                        row *= 1.0 - timelines[phase, k]
            else:
                # One kernel call covers the whole phase's
                # (flood, receiver) grid, restricted to the undecided
                # listeners — the only receivers whose draws can still
                # change state (a received on-air node is either armed,
                # so it cannot re-arm, or about to switch off), so the
                # restriction is bit-identical.  Inactive rows and
                # decided columns stay zero.
                probabilities.fill(0.0)
                undecided = on_air & ~received
                # Floods whose own listeners have all decoded draw no
                # consequences from this phase's successes; only the
                # others need probability rows.
                active = active[undecided[active].any(axis=1)]
                columns = np.flatnonzero(undecided[active].any(axis=0))
                if len(active) and len(columns):
                    self._phase_success_batched(
                        transmit,
                        tx_counts,
                        active,
                        columns,
                        prr,
                        link_failure,
                        log_failure,
                        boost_factor,
                        probabilities,
                    )
                    if not no_interference and penalized_phases[phase].any():
                        # Batched penalty: rows without a burst multiply
                        # by exactly 1.0 and zero rows stay zero, so one
                        # (K, N) multiply equals the per-flood
                        # application.
                        probabilities *= 1.0 - timelines[phase]
            success = (draws[phase] < probabilities) & (on_air ^ transmit)
            newly = success & ~received
            received |= newly
            reception_phase[newly] = phase
            rearm = success & (transmissions < n_tx_vec) & (next_tx < 0)
            next_tx[rearm] = phase + 1

            transmissions += transmit
            budget_spent = transmissions >= n_tx_vec
            spent = transmit & budget_spent
            again = transmit ^ spent
            next_tx[again] = phase + 2
            next_tx[spent] = -1
            off_after[spent] = phase + 1
            on_air ^= spent

            done = on_air & received & budget_spent & (next_tx < 0)
            if done.any():
                off_after[done] = phase + 1
                on_air ^= done

            pending_any = (next_tx >= 0).any(axis=1)
            if not pending_any.any():
                break
            if not per_flood_kernel:
                # Flood-level early exit: a flood whose on-air nodes
                # have all decoded evolves deterministically (armed
                # transmitters just spend their budget every second
                # phase, and no draw can change any state), so its
                # leftover phases are replayed in closed form and the
                # flood retires from the batch.  The draws were
                # generated up front, so still-undecided floods keep
                # bit-identical streams.
                decided = pending_any & ~(on_air & ~received).any(axis=1)
                if decided.any():
                    _finish_pending_transmissions(
                        next_tx,
                        transmissions,
                        n_tx_vec,
                        off_after,
                        on_air,
                        num_phases,
                        flood_mask=decided,
                    )
                    if not (next_tx >= 0).any():
                        break

        on_phases = np.where(off_after < 0, num_phases, np.minimum(off_after, num_phases))
        radio_on = np.minimum(slot_ms, on_phases * phase_ms)

        results: List[FloodResult] = []
        if part_mask is None:
            for k, initiator in enumerate(initiators):
                results.append(
                    FloodResult(
                        initiator=initiator,
                        received=received[k],
                        reception_phase=reception_phase[k],
                        transmissions=transmissions[k],
                        radio_on_ms=radio_on[k],
                        slot_duration_ms=slot_ms,
                        channel=channels[k],
                        node_ids=self.node_ids,
                    )
                )
            return results
        rows = np.flatnonzero(part_mask)
        row_ids = self._ids_arr[rows].tolist()
        for k, initiator in enumerate(initiators):
            results.append(
                FloodResult(
                    initiator=initiator,
                    received=received[k, rows],
                    reception_phase=reception_phase[k, rows],
                    transmissions=transmissions[k, rows],
                    radio_on_ms=radio_on[k, rows],
                    slot_duration_ms=slot_ms,
                    channel=channels[k],
                    node_ids=row_ids,
                )
            )
        return results

    def _failure_padded(self, link_failure: np.ndarray) -> np.ndarray:
        """``link_failure`` with an all-ones padding row appended.

        Row ``N`` multiplies by exactly ``1.0``, which is what lets the
        batched kernel pad every flood's transmitter list to a shared
        length without changing any product.  Cached per failure matrix
        (link-quality mutations swap the matrix object, refreshing the
        cache).
        """
        cached = self._failure_padded_cache
        if cached is None or cached[0] is not link_failure:
            padded = np.concatenate(
                [link_failure, np.ones((1, link_failure.shape[1]))], axis=0
            )
            cached = (link_failure, padded)
            self._failure_padded_cache = cached
        return cached[1]

    def _workspace(self, name: str, size: int) -> np.ndarray:
        """A reusable float64 scratch vector of at least ``size`` elements.

        The batched kernel runs every phase with differently-shaped
        temporaries; allocating them fresh costs more in page faults
        than the arithmetic they carry, so each named workspace grows
        monotonically and is re-sliced per call.
        """
        buffer = self._workspaces.get(name)
        if buffer is None or buffer.size < size:
            buffer = np.empty(size)
            self._workspaces[name] = buffer
        return buffer[:size]

    def _phase_success_batched(
        self,
        transmit: np.ndarray,
        tx_counts: np.ndarray,
        active: np.ndarray,
        columns: np.ndarray,
        prr: np.ndarray,
        link_failure: np.ndarray,
        log_failure: Optional[np.ndarray],
        boost_factor: float,
        out: np.ndarray,
    ) -> None:
        """Fill ``out[np.ix_(active, columns)]`` with reception probabilities.

        One kernel call evaluates a whole phase: ``active`` flags the
        floods with at least one transmitter and at least one undecided
        listener, ``columns`` the union of their undecided listeners
        (on air, not yet received — the only receivers whose draws can
        still change any state, so restricting the grid is
        bit-identical; every other entry of ``out`` must already be
        zero).

        **Exact kernel** (``log_failure is None``): the masked product
        ``np.prod(np.where(mask[:, :, None], failure[None], 1.0), axis=1)``
        evaluated without materializing the ``(K, N, N)`` cube — every
        flood's transmitter rows are padded to a shared length with the
        all-ones row of :meth:`_failure_padded`, gathered
        transmitter-major into a reusable workspace, and reduced with
        one ``multiply.reduce`` per chunk.  Transmitter rows that are
        ``1.0`` at every undecided column are dropped up front (exact
        no-op factors), and the remaining factors multiply in the same
        order as the per-flood ``failure[tx].prod(axis=0)`` loop with
        only exact ``* 1.0`` padding appended at segment tails, so
        results are bit-for-bit identical.  Chunking along the flood
        axis keeps each gather + product inside
        :data:`KERNEL_CHUNK_ELEMENTS` doubles (cache-resident).

        **Log kernel** (``"vectorized-log"``): one
        ``(A, N) x (N, U)`` matmul of the transmitter masks against
        ``log1p(-prr)`` sums the failure logs, and ``-expm1`` maps the
        sums back to success probabilities — approximate (log/exp
        round-trip, deviations around 1e-12), but constant memory and
        BLAS-fast on 1000+ node topologies.

        Both kernels apply the capture boost only to floods with >= 2
        transmitters and serve single-transmitter floods straight from
        the PRR matrix (so phase 0 — the initiator's solo transmission
        — stays exact even in log mode).
        """
        counts = tx_counts[active]
        multi = counts >= 2
        single = ~multi  # every active flood has >= 1 transmitter
        num_cols = len(columns)
        if single.any():
            solo_rows = active[single]
            # Exactly one transmitter per solo flood: its PRR row is
            # the success probability (no capture boost).
            solo_tx = transmit[solo_rows].argmax(axis=1)
            out[np.ix_(solo_rows, columns)] = prr[np.ix_(solo_tx, columns)]
        if not multi.any():
            return
        rows = active[multi]

        if log_failure is not None:
            block = transmit[rows].astype(np.float64) @ log_failure[:, columns]
            np.expm1(block, out=block)
            np.negative(block, out=block)
            block *= boost_factor
            np.minimum(block, 1.0, out=block)
            out[np.ix_(rows, columns)] = block
            return

        n = self._n
        padded = self._failure_padded(link_failure)
        if num_cols < n:
            sliced = self._workspace("columns", (n + 1) * num_cols)
            sliced = sliced.reshape(n + 1, num_cols)
            np.take(padded, columns, axis=1, out=sliced)
            padded = sliced
        # Transmitters whose failure row is 1.0 at every undecided
        # column contribute exact no-op factors; drop their rows.  The
        # remaining factors keep their ascending order, so the running
        # products match the dense formulation value for value.
        relevant = (padded[:n] != 1.0).any(axis=1)
        tx_used = transmit[rows] & relevant
        counts_used = tx_used.sum(axis=1)
        t_max = max(1, int(counts_used.max()))
        num_multi = len(rows)
        # Padded transmitter-row indices, transmitter-major: row N is
        # the all-ones row, and a flood with no relevant transmitter
        # keeps an all-padding column (product 1.0 -> probability 0).
        idx = np.full((t_max, num_multi), n, dtype=np.int64)
        valid = np.arange(t_max)[None, :] < counts_used[:, None]
        idx.T[valid] = np.nonzero(tx_used)[1]
        if num_multi * num_cols >= KERNEL_STREAM_MIN_ROW:
            # Stream the factors through a cache-resident (A, U)
            # accumulator, one transmitter row set at a time — the same
            # sequential multiplications as the materialized reduce,
            # without writing the gathered factors anywhere.  Below the
            # row-size threshold the per-row dispatches dominate and
            # the chunked gather + reduce wins.
            block = self._workspace("product", num_multi * num_cols)
            block = block.reshape(num_multi, num_cols)
            row = self._workspace("gather", num_multi * num_cols)
            row = row.reshape(num_multi, num_cols)
            np.take(padded, idx[0], axis=0, out=block)
            for position in range(1, t_max):
                np.take(padded, idx[position], axis=0, out=row)
                np.multiply(block, row, out=block)
            np.subtract(1.0, block, out=block)
            block *= boost_factor
            np.minimum(block, 1.0, out=block)
            out[np.ix_(rows, columns)] = block
            return
        flood_budget = max(1, KERNEL_CHUNK_ELEMENTS // max(1, t_max * num_cols))
        for start in range(0, num_multi, flood_budget):
            stop = min(start + flood_budget, num_multi)
            width = (stop - start) * num_cols
            gathered = self._workspace("gather", t_max * width)
            gathered = gathered.reshape(t_max * (stop - start), num_cols)
            np.take(padded, idx[:, start:stop].reshape(-1), axis=0, out=gathered)
            block = self._workspace("product", width)
            np.multiply.reduce(gathered.reshape(t_max, width), axis=0, out=block)
            block = block.reshape(stop - start, num_cols)
            np.subtract(1.0, block, out=block)
            block *= boost_factor
            np.minimum(block, 1.0, out=block)
            out[np.ix_(rows[start:stop], columns)] = block

"""Glossy synchronous-transmission floods.

Glossy floods a packet through the whole network within a single slot:
the initiator transmits, every node that receives the packet
retransmits it in the immediately following transmission phase, and
nodes alternate between reception and transmission until they have
transmitted the packet ``N_TX`` times.  Because all retransmitters send
bit-identical packets within sub-microsecond synchronization, concurrent
transmissions interfere constructively (capture effect) and the flood
propagates one hop per phase.

This module simulates a flood at phase granularity: a phase is one
packet airtime plus the RX/TX turnaround.  The simulation produces, for
every participating node, whether it received the packet, in which
phase, how many times it transmitted, and how long its radio stayed on
— exactly the observables Dimmer's feedback loop is built on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.net.interference import InterferenceSource, NoInterference
from repro.net.link import LinkModel
from repro.net.packet import DEFAULT_PACKET_BYTES
from repro.net.radio import RadioModel
from repro.net.topology import Topology


@dataclass(frozen=True)
class FloodResult:
    """Outcome of one Glossy flood (one slot).

    Attributes
    ----------
    initiator:
        Node that originated the flood.
    received:
        Per-node flag: did the node decode the packet at least once?
    reception_phase:
        Phase index of the first successful reception (``None`` if the
        node never received; 0 for the initiator itself).
    transmissions:
        Number of times each node transmitted the packet.
    radio_on_ms:
        Radio-on time of each node during the slot.
    slot_duration_ms:
        Slot length the flood was executed in.
    channel:
        Channel the flood was executed on.
    """

    initiator: int
    received: Dict[int, bool]
    reception_phase: Dict[int, Optional[int]]
    transmissions: Dict[int, int]
    radio_on_ms: Dict[int, float]
    slot_duration_ms: float
    channel: int

    @property
    def reliability(self) -> float:
        """Fraction of non-initiator participants that received the packet."""
        destinations = [n for n in self.received if n != self.initiator]
        if not destinations:
            return 1.0
        return sum(1 for n in destinations if self.received[n]) / len(destinations)

    @property
    def average_radio_on_ms(self) -> float:
        """Radio-on time averaged over every participant."""
        if not self.radio_on_ms:
            return 0.0
        return sum(self.radio_on_ms.values()) / len(self.radio_on_ms)

    def receivers(self) -> List[int]:
        """Sorted list of nodes that successfully received the packet."""
        return sorted(n for n, ok in self.received.items() if ok)

    def non_receivers(self) -> List[int]:
        """Sorted list of nodes that never received the packet."""
        return sorted(n for n, ok in self.received.items() if not ok)


#: Flood engine implementations selectable via ``SimulatorConfig.engine``.
FLOOD_ENGINES = ("scalar", "vectorized")


class GlossyFlood:
    """Phase-level simulator of a single Glossy flood.

    Parameters
    ----------
    topology:
        Deployment the flood runs over.
    link_model:
        Link-quality model used for per-phase reception draws.
    radio:
        Radio timing/energy model (phase duration, maximum slot length).
    rng:
        Random generator used for reception draws; pass a seeded
        generator for reproducible floods.
    engine:
        ``"scalar"`` runs the per-node reference implementation;
        ``"vectorized"`` advances each phase with NumPy state vectors
        and batched reception draws (statistically equivalent, much
        faster on large topologies).
    """

    def __init__(
        self,
        topology: Topology,
        link_model: Optional[LinkModel] = None,
        radio: Optional[RadioModel] = None,
        rng: Optional[np.random.Generator] = None,
        engine: str = "scalar",
    ) -> None:
        if engine not in FLOOD_ENGINES:
            raise ValueError(f"engine must be one of {FLOOD_ENGINES}, got {engine!r}")
        self.topology = topology
        self.link_model = link_model if link_model is not None else LinkModel(topology)
        self.radio = radio if radio is not None else RadioModel()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.engine = engine
        #: Node coordinates in ``LinkModel.prr_matrix`` index order, used
        #: for batched interference-penalty evaluation.
        self._coords = np.array(
            [topology.positions[node] for node in topology.node_ids], dtype=float
        )

    def _normalize_n_tx(
        self,
        n_tx: Union[int, Mapping[int, int]],
        participants: Sequence[int],
    ) -> Dict[int, int]:
        """Expand a global N_TX value into a per-node mapping."""
        if isinstance(n_tx, int):
            if n_tx < 0:
                raise ValueError("n_tx must be non-negative")
            return {node: n_tx for node in participants}
        per_node = {}
        for node in participants:
            value = n_tx.get(node, 0)
            if value < 0:
                raise ValueError("n_tx must be non-negative")
            per_node[node] = value
        return per_node

    def run(
        self,
        initiator: int,
        n_tx: Union[int, Mapping[int, int]] = 3,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
        channel: int = 26,
        start_ms: float = 0.0,
        interference: Optional[InterferenceSource] = None,
        participants: Optional[Sequence[int]] = None,
        max_slot_ms: Optional[float] = None,
    ) -> FloodResult:
        """Simulate one Glossy flood and return its outcome.

        Parameters
        ----------
        initiator:
            The node that starts the flood (owns the data slot).
        n_tx:
            Either a single retransmission count applied to every node,
            or a per-node mapping (the forwarder-selection case, where
            passive receivers use 0).  The initiator always transmits at
            least once, otherwise no flood would take place.
        packet_bytes:
            Total wire size of the flooded packet.
        channel:
            IEEE 802.15.4 channel of the slot.
        start_ms:
            Slot start on the global clock; used to align interference
            bursts with the flood's phases.
        interference:
            Interference source (defaults to none).
        participants:
            Nodes taking part in the slot (defaults to every node);
            non-participants keep their radio off and cannot receive.
        max_slot_ms:
            Slot length; the flood is truncated when it runs out of slot.
        """
        if participants is None:
            participants = self.topology.node_ids
        participants = list(participants)
        if initiator not in participants:
            raise ValueError(f"initiator {initiator} is not among the participants")
        interference = interference if interference is not None else NoInterference()
        slot_ms = max_slot_ms if max_slot_ms is not None else self.radio.max_slot_ms

        per_node_n_tx = self._normalize_n_tx(n_tx, participants)
        # The initiator must transmit at least once for the flood to exist.
        per_node_n_tx[initiator] = max(1, per_node_n_tx[initiator])

        phase_ms = self.radio.phase_duration_ms(packet_bytes)
        num_phases = max(1, int(math.floor(slot_ms / phase_ms)))

        runner = self._run_vectorized if self.engine == "vectorized" else self._run_scalar
        return runner(
            initiator=initiator,
            participants=participants,
            per_node_n_tx=per_node_n_tx,
            channel=channel,
            start_ms=start_ms,
            interference=interference,
            slot_ms=slot_ms,
            phase_ms=phase_ms,
            num_phases=num_phases,
        )

    def _run_scalar(
        self,
        initiator: int,
        participants: List[int],
        per_node_n_tx: Dict[int, int],
        channel: int,
        start_ms: float,
        interference: InterferenceSource,
        slot_ms: float,
        phase_ms: float,
        num_phases: int,
    ) -> FloodResult:
        """Reference implementation: per-node dict bookkeeping."""
        received: Dict[int, bool] = {node: False for node in participants}
        reception_phase: Dict[int, Optional[int]] = {node: None for node in participants}
        transmissions: Dict[int, int] = {node: 0 for node in participants}
        #: Phase in which a node transmits next (None = not scheduled yet).
        next_tx_phase: Dict[int, Optional[int]] = {node: None for node in participants}
        #: Phase after which the node switched its radio off (exclusive).
        off_after_phase: Dict[int, Optional[int]] = {node: None for node in participants}

        received[initiator] = True
        reception_phase[initiator] = 0
        next_tx_phase[initiator] = 0

        for phase in range(num_phases):
            transmitters = [
                node
                for node in participants
                if next_tx_phase[node] == phase
                and transmissions[node] < per_node_n_tx[node]
                and off_after_phase[node] is None
            ]
            # Listeners: radio on, not transmitting in this phase.
            listeners = [
                node
                for node in participants
                if node not in transmitters and off_after_phase[node] is None
            ]
            phase_start = start_ms + phase * phase_ms
            newly_received: List[int] = []
            if transmitters:
                for node in listeners:
                    penalty = interference.penalty(
                        self.topology.positions[node], phase_start, phase_ms, channel
                    )
                    probability = self.link_model.reception_probability(
                        transmitters, node, interference_penalty=penalty
                    )
                    if probability > 0.0 and self.rng.random() < probability:
                        if not received[node]:
                            received[node] = True
                            reception_phase[node] = phase
                            newly_received.append(node)
                        # Glossy re-synchronizes on every reception: schedule
                        # (or re-arm) the next transmission for the following
                        # phase if the node still has transmissions left.
                        if (
                            transmissions[node] < per_node_n_tx[node]
                            and next_tx_phase[node] is None
                        ):
                            next_tx_phase[node] = phase + 1

            for node in transmitters:
                transmissions[node] += 1
                if transmissions[node] < per_node_n_tx[node]:
                    # Alternate: listen next phase, transmit the one after.
                    next_tx_phase[node] = phase + 2
                else:
                    next_tx_phase[node] = None
                    off_after_phase[node] = phase + 1

            # Nodes that have received and have nothing left to transmit can
            # switch off: passive receivers (N_TX = 0) right after their first
            # reception, forwarders once their transmission budget is spent.
            for node in participants:
                if off_after_phase[node] is not None:
                    continue
                if received[node] and per_node_n_tx[node] == 0:
                    off_after_phase[node] = phase + 1
                elif (
                    received[node]
                    and transmissions[node] >= per_node_n_tx[node]
                    and next_tx_phase[node] is None
                ):
                    off_after_phase[node] = phase + 1

        radio_on_ms: Dict[int, float] = {}
        for node in participants:
            off = off_after_phase[node]
            on_phases = num_phases if off is None else min(off, num_phases)
            radio_on_ms[node] = min(slot_ms, on_phases * phase_ms)

        return FloodResult(
            initiator=initiator,
            received=received,
            reception_phase=reception_phase,
            transmissions=transmissions,
            radio_on_ms=radio_on_ms,
            slot_duration_ms=slot_ms,
            channel=channel,
        )

    def _run_vectorized(
        self,
        initiator: int,
        participants: List[int],
        per_node_n_tx: Dict[int, int],
        channel: int,
        start_ms: float,
        interference: InterferenceSource,
        slot_ms: float,
        phase_ms: float,
        num_phases: int,
    ) -> FloodResult:
        """NumPy formulation: one phase is a handful of matrix operations.

        State lives in per-node vectors aligned with the
        :meth:`~repro.net.link.LinkModel.prr_matrix` index order; every
        phase draws all reception outcomes in one batched RNG call.  The
        per-phase logic mirrors :meth:`_run_scalar` exactly — only the
        RNG consumption pattern differs, so results are statistically
        (not bit-for-bit) identical under a fixed seed.
        """
        index = self.link_model.node_index
        n_all = len(index)
        part_mask = np.zeros(n_all, dtype=bool)
        n_tx_vec = np.zeros(n_all, dtype=np.int64)
        for node in participants:
            part_mask[index[node]] = True
            n_tx_vec[index[node]] = per_node_n_tx[node]

        received = np.zeros(n_all, dtype=bool)
        reception_phase = np.full(n_all, -1, dtype=np.int64)
        transmissions = np.zeros(n_all, dtype=np.int64)
        next_tx = np.full(n_all, -1, dtype=np.int64)  # -1 = not scheduled
        off_after = np.full(n_all, -1, dtype=np.int64)  # -1 = radio still on

        init_idx = index[initiator]
        received[init_idx] = True
        reception_phase[init_idx] = 0
        next_tx[init_idx] = 0

        # One batched draw for the whole slot: row ``p`` serves phase ``p``.
        draws = self.rng.random((num_phases, n_all))
        prr = self.link_model.prr_matrix()
        link_failure = self.link_model._failure_matrix
        boost_factor = 1.0 + self.link_model.capture_boost
        no_interference = isinstance(interference, NoInterference)
        passive = n_tx_vec == 0

        on_air = part_mask.copy()  # participants whose radio is still on
        for phase in range(num_phases):
            transmit = (next_tx == phase) & on_air
            tx_indices = transmit.nonzero()[0]
            num_tx = len(tx_indices)
            if num_tx:
                # Inlined LinkModel.reception_probabilities (the method
                # itself stays the reference for property tests): the
                # reception fails only if every non-self link fails, with
                # the capture boost rewarding >1 synchronized senders.
                if num_tx == 1:
                    probabilities = prr[tx_indices[0]]
                else:
                    # Values at transmitter indices diverge from the
                    # reference method (no per-transmitter boost
                    # exception) but are never consumed: transmitters
                    # are masked out of ``success`` below.
                    probabilities = 1.0 - link_failure[tx_indices].prod(axis=0)
                    probabilities *= boost_factor
                    np.minimum(probabilities, 1.0, out=probabilities)
                if not no_interference:
                    penalties = interference.penalty_batch(
                        self._coords, start_ms + phase * phase_ms, phase_ms, channel
                    )
                    probabilities = probabilities * (1.0 - penalties)
                # Transmitters cannot listen; a draw >= probability fails.
                success = (draws[phase] < probabilities) & on_air & ~transmit
                newly = success & ~received
                received |= newly
                reception_phase[newly] = phase
                # Glossy re-synchronizes on every reception: (re-)arm the
                # next transmission if the node has transmissions left.
                rearm = success & (transmissions < n_tx_vec) & (next_tx < 0)
                next_tx[rearm] = phase + 1

                transmissions[tx_indices] += 1
                spent = transmit & (transmissions >= n_tx_vec)
                again = transmit & ~spent
                next_tx[again] = phase + 2  # listen next phase, send after
                next_tx[spent] = -1
                off_after[spent] = phase + 1
                on_air &= ~spent

            # Passive receivers switch off right after their first
            # reception, forwarders once their budget is spent.
            done = on_air & received & (
                passive | ((transmissions >= n_tx_vec) & (next_tx < 0))
            )
            if done.any():
                off_after[done] = phase + 1
                on_air &= ~done

            if not (next_tx >= 0).any():
                # No transmission is pending anywhere: no state can change
                # in later phases (nodes still listening stay on until the
                # end of the slot, which the radio-on accounting below
                # covers), so the phase loop can stop early.
                break

        on_phases = np.where(off_after < 0, num_phases, np.minimum(off_after, num_phases))
        radio_on = np.minimum(slot_ms, on_phases * phase_ms)

        received_list = received.tolist()
        phase_list = reception_phase.tolist()
        tx_list = transmissions.tolist()
        radio_list = radio_on.tolist()
        received_map: Dict[int, bool] = {}
        phase_map: Dict[int, Optional[int]] = {}
        tx_map: Dict[int, int] = {}
        radio_map: Dict[int, float] = {}
        for node in participants:
            i = index[node]
            received_map[node] = received_list[i]
            phase_map[node] = phase_list[i] if phase_list[i] >= 0 else None
            tx_map[node] = tx_list[i]
            radio_map[node] = radio_list[i]

        return FloodResult(
            initiator=initiator,
            received=received_map,
            reception_phase=phase_map,
            transmissions=tx_map,
            radio_on_ms=radio_map,
            slot_duration_ms=slot_ms,
            channel=channel,
        )

"""Low-power Wireless Bus (LWB) round engine.

LWB turns a multi-hop network into a logical shared bus: a coordinator
(host) schedules periodic communication rounds.  A round starts with a
control slot in which the coordinator floods the schedule (and, in
Dimmer, the new retransmission parameter or a forwarder-selection
command); a series of data slots follows, one per scheduled source,
each executed as a Glossy flood.

Nodes that fail to decode the schedule are unsynchronized for that
round: they cannot participate in the data slots, miss every packet and
keep their radio on trying to re-synchronize — which is exactly why
plain LWB's energy consumption rises under interference (§V-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.net.channels import ChannelHopper
from repro.net.glossy import FloodResult, GlossyFlood
from repro.net.interference import InterferenceSource, NoInterference
from repro.net.link import LinkModel
from repro.net.node import Node, NodeRole
from repro.net.packet import (
    DEFAULT_PACKET_BYTES,
    DataPacket,
    DimmerFeedbackHeader,
    SchedulePacket,
)
from repro.net.radio import RadioModel
from repro.net.topology import Topology


@dataclass(frozen=True)
class Schedule:
    """Round schedule computed by the coordinator.

    Attributes
    ----------
    round_index:
        Monotonically increasing round counter.
    n_tx:
        Global retransmission parameter to apply for this round.
    slots:
        Source node of each data slot, in slot order.
    forwarder_selection:
        When True, the coordinator signals an interference-free round in
        which the designated ``learning_node`` may run its local
        multi-armed bandit learning step.
    learning_node:
        Node allowed to (re)draw its forwarder/passive role this round.
    """

    round_index: int
    n_tx: int
    slots: Sequence[int]
    forwarder_selection: bool = False
    learning_node: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_tx < 0:
            raise ValueError("n_tx must be non-negative")

    def to_packet(self, coordinator: int) -> SchedulePacket:
        """Serialize the schedule into its control-slot packet."""
        return SchedulePacket(
            source=coordinator,
            n_tx=self.n_tx,
            slots=tuple(self.slots),
            forwarder_selection=self.forwarder_selection,
            learning_node=self.learning_node,
            round_index=self.round_index,
        )


@dataclass(frozen=True)
class SlotResult:
    """Outcome of one data slot."""

    slot_index: int
    source: int
    channel: int
    flood: FloodResult
    feedback: Optional[DimmerFeedbackHeader] = None
    acknowledged: bool = True

    @property
    def reliability(self) -> float:
        """Fraction of destinations that received the slot's packet."""
        return self.flood.reliability


@dataclass
class RoundResult:
    """Outcome of a full LWB/Dimmer round."""

    round_index: int
    schedule: Schedule
    start_ms: float
    control_flood: FloodResult
    slots: List[SlotResult]
    synchronized: Dict[int, bool]
    radio_on_ms: Dict[int, float] = field(default_factory=dict)
    packets_expected: Dict[int, int] = field(default_factory=dict)
    packets_received: Dict[int, int] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        """Number of nodes accounted for in this round."""
        return len(self.synchronized)

    @property
    def reliability(self) -> float:
        """Network-wide reliability: received / expected over all destinations."""
        expected = sum(self.packets_expected.values())
        if expected == 0:
            return 1.0
        return sum(self.packets_received.values()) / expected

    @property
    def had_losses(self) -> bool:
        """True when at least one scheduled packet was missed by a destination."""
        return self.reliability < 1.0

    def per_node_reliability(self) -> Dict[int, float]:
        """Reliability of each node over this round's data slots."""
        result = {}
        for node, expected in self.packets_expected.items():
            if expected == 0:
                result[node] = 1.0
            else:
                result[node] = self.packets_received[node] / expected
        return result

    @property
    def average_radio_on_ms(self) -> float:
        """Radio-on time per slot, averaged over all nodes and slots of the round."""
        num_slots = len(self.slots) + 1  # control slot included
        if not self.radio_on_ms or num_slots == 0:
            return 0.0
        per_node = [total / num_slots for total in self.radio_on_ms.values()]
        return float(np.mean(per_node))

    def per_node_radio_on_ms(self) -> Dict[int, float]:
        """Per-slot radio-on time of each node, averaged over this round."""
        num_slots = len(self.slots) + 1
        return {node: total / num_slots for node, total in self.radio_on_ms.items()}


#: Alias kept for API clarity: a "round" object is its result.
LWBRound = RoundResult


def build_observer_view(
    result: RoundResult,
    observer: int,
    expected_nodes: Optional[Sequence[int]] = None,
    pessimistic_radio_on_ms: float = 20.0,
) -> Dict[str, Dict[int, float]]:
    """Reconstruct what ``observer`` legitimately knows after a round.

    Dimmer closes its feedback loop through the two-byte headers carried
    by data packets: an observer only knows the performance of nodes
    whose packet it received this round; every other scheduled node is
    filled in pessimistically (0 % reliability, 100 % radio-on time) and
    reported under ``"missing"``.  The observer's own statistics are
    exact.  This helper is shared by the coordinator-side statistics
    collector, the trace recorder (so training data has the same
    distribution as deployment inputs) and the simulation training
    environment.

    Returns a dict with keys ``"reliability"``, ``"radio_on_ms"`` and
    ``"missing"`` (the latter mapping node -> 1.0 markers).
    """
    reliabilities: Dict[int, float] = {}
    radio_on: Dict[int, float] = {}
    missing: Dict[int, float] = {}

    received_feedback: Dict[int, DimmerFeedbackHeader] = {}
    for slot in result.slots:
        if slot.feedback is None:
            continue
        if slot.flood.received.get(observer, False) or slot.source == observer:
            received_feedback[slot.source] = slot.feedback

    scheduled = set(result.schedule.slots)
    if expected_nodes is not None:
        scheduled &= set(expected_nodes)
    scheduled.add(observer)

    num_slots = len(result.slots) + 1
    for node in sorted(scheduled):
        if node == observer:
            expected = result.packets_expected.get(node, 0)
            received = result.packets_received.get(node, 0)
            reliabilities[node] = 1.0 if expected == 0 else received / expected
            radio_on[node] = result.radio_on_ms.get(node, 0.0) / num_slots
        elif node in received_feedback:
            reliabilities[node] = received_feedback[node].reliability
            radio_on[node] = received_feedback[node].radio_on_ms
        else:
            reliabilities[node] = 0.0
            radio_on[node] = pessimistic_radio_on_ms
            missing[node] = 1.0
    return {"reliability": reliabilities, "radio_on_ms": radio_on, "missing": missing}


class LWBRoundEngine:
    """Executes LWB rounds slot by slot on top of Glossy floods.

    Parameters
    ----------
    topology:
        Deployment to run over.
    link_model, radio:
        Link-quality and radio models (defaults derived from the topology).
    hopper:
        Channel hopper; disable it (``ChannelHopper(enabled=False)``) for
        the single-channel LWB baseline.
    slot_ms:
        Maximum duration of a slot (20 ms in the paper).
    slot_gap_ms:
        Processing gap between consecutive slots.
    packet_bytes:
        Application packet size (30 bytes in the paper).
    rng:
        Random generator shared by all floods of this engine.
    engine:
        Flood engine implementation (``"scalar"`` reference or
        ``"vectorized"``, see :class:`~repro.net.glossy.GlossyFlood`).
    """

    def __init__(
        self,
        topology: Topology,
        link_model: Optional[LinkModel] = None,
        radio: Optional[RadioModel] = None,
        hopper: Optional[ChannelHopper] = None,
        slot_ms: float = 20.0,
        slot_gap_ms: float = 2.0,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
        rng: Optional[np.random.Generator] = None,
        engine: str = "scalar",
    ) -> None:
        if slot_ms <= 0:
            raise ValueError("slot_ms must be positive")
        self.topology = topology
        self.link_model = link_model if link_model is not None else LinkModel(topology)
        self.radio = radio if radio is not None else RadioModel()
        self.hopper = hopper if hopper is not None else ChannelHopper()
        self.slot_ms = slot_ms
        self.slot_gap_ms = slot_gap_ms
        self.packet_bytes = packet_bytes
        self.rng = rng if rng is not None else np.random.default_rng()
        self._flood = GlossyFlood(topology, self.link_model, self.radio, self.rng, engine=engine)

    def round_airtime_ms(self, num_data_slots: int) -> float:
        """Total on-air duration of a round with ``num_data_slots`` data slots."""
        slots = num_data_slots + 1
        return slots * self.slot_ms + max(0, slots - 1) * self.slot_gap_ms

    def _slot_start_ms(self, round_start_ms: float, slot_index: int) -> float:
        """Global start time of slot ``slot_index`` (0 = control slot)."""
        return round_start_ms + slot_index * (self.slot_ms + self.slot_gap_ms)

    def run_round(
        self,
        nodes: Mapping[int, Node],
        schedule: Schedule,
        start_ms: float = 0.0,
        interference: Optional[InterferenceSource] = None,
        collect_feedback: bool = True,
        destinations: Optional[Sequence[int]] = None,
    ) -> RoundResult:
        """Execute one LWB round.

        Parameters
        ----------
        nodes:
            Node objects keyed by id; their roles and ``n_tx`` values are
            read (passive receivers flood with ``N_TX = 0``), and their
            statistics and overheard feedback are updated in place.
        schedule:
            The schedule computed by the coordinator for this round.
        start_ms:
            Round start on the global clock.
        interference:
            Interference source active during the round.
        collect_feedback:
            When True, data packets carry the source's Dimmer feedback
            header and receivers record it (Dimmer); when False, packets
            are plain LWB packets.
        destinations:
            When given, reliability is only accounted at these nodes
            (the D-Cube data-collection scenario has a single sink);
            ``None`` means broadcast semantics (every node is a
            destination of every packet).
        """
        interference = interference if interference is not None else NoInterference()
        coordinator = self.topology.coordinator
        all_ids = list(nodes.keys())

        # --- Control slot: flood the schedule from the coordinator. -----
        control_channel = self.hopper.control_channel()
        control_packet = schedule.to_packet(coordinator)
        control_flood = self._flood.run(
            initiator=coordinator,
            n_tx=max(schedule.n_tx, 1),
            packet_bytes=control_packet.total_bytes,
            channel=control_channel,
            start_ms=self._slot_start_ms(start_ms, 0),
            interference=interference,
            participants=all_ids,
            max_slot_ms=self.slot_ms,
        )
        synchronized = {node: control_flood.received.get(node, False) for node in all_ids}
        synchronized[coordinator] = True

        # Synchronized nodes apply the new retransmission parameter
        # immediately after the control slot.
        for node_id, node in nodes.items():
            if synchronized[node_id]:
                node.apply_n_tx(schedule.n_tx)

        radio_on_ms: Dict[int, float] = {
            node: control_flood.radio_on_ms.get(node, self.slot_ms) for node in all_ids
        }
        packets_expected: Dict[int, int] = {node: 0 for node in all_ids}
        packets_received: Dict[int, int] = {node: 0 for node in all_ids}

        # --- Data slots. -------------------------------------------------
        slot_results: List[SlotResult] = []
        for slot_index, source in enumerate(schedule.slots):
            channel = self.hopper.data_channel(slot_index)
            slot_start = self._slot_start_ms(start_ms, slot_index + 1)
            slot_destinations = (
                [d for d in destinations if d != source]
                if destinations is not None
                else [n for n in all_ids if n != source]
            )

            if not synchronized.get(source, False):
                # The source missed the schedule: the slot stays empty.
                # Synchronized nodes still listen for the announced packet
                # and unsynchronized ones listen trying to re-sync.
                for node in all_ids:
                    radio_on_ms[node] += self.slot_ms
                for node in slot_destinations:
                    packets_expected[node] += 1
                empty = FloodResult(
                    initiator=source,
                    received={node: False for node in all_ids},
                    reception_phase={node: None for node in all_ids},
                    transmissions={node: 0 for node in all_ids},
                    radio_on_ms={node: self.slot_ms for node in all_ids},
                    slot_duration_ms=self.slot_ms,
                    channel=channel,
                )
                slot_results.append(
                    SlotResult(slot_index=slot_index, source=source, channel=channel, flood=empty)
                )
                continue

            participants = [n for n in all_ids if synchronized[n]]
            per_node_n_tx = {n: nodes[n].effective_n_tx for n in participants}
            flood = self._flood.run(
                initiator=source,
                n_tx=per_node_n_tx,
                packet_bytes=DataPacket(source=source).total_bytes,
                channel=channel,
                start_ms=slot_start,
                interference=interference,
                participants=participants,
                max_slot_ms=self.slot_ms,
            )

            feedback = nodes[source].statistics.to_feedback() if collect_feedback else None
            for node in all_ids:
                if node in flood.radio_on_ms:
                    radio_on_ms[node] += flood.radio_on_ms[node]
                else:
                    # Unsynchronized nodes keep listening the whole slot.
                    radio_on_ms[node] += self.slot_ms
            for node in slot_destinations:
                packets_expected[node] += 1
                if flood.received.get(node, False):
                    packets_received[node] += 1
            if collect_feedback and feedback is not None:
                for node in all_ids:
                    if flood.received.get(node, False):
                        nodes[node].observe_feedback(source, feedback)

            slot_results.append(
                SlotResult(
                    slot_index=slot_index,
                    source=source,
                    channel=channel,
                    flood=flood,
                    feedback=feedback,
                )
            )

        # Update the per-node statistics used for the feedback headers of
        # the *next* round: reliability reflects this round's outcome,
        # radio-on time is a rolling average over the last few rounds
        # ("averaged over the last floods" in the paper).
        num_slots = len(schedule.slots) + 1
        for node_id, node in nodes.items():
            node.statistics.packets_expected = packets_expected[node_id]
            node.statistics.packets_received = packets_received[node_id]
            node.statistics.radio_on.record_slot(radio_on_ms[node_id] / num_slots)

        self.hopper.advance_round(len(schedule.slots))

        return RoundResult(
            round_index=schedule.round_index,
            schedule=schedule,
            start_ms=start_ms,
            control_flood=control_flood,
            slots=slot_results,
            synchronized=synchronized,
            radio_on_ms=radio_on_ms,
            packets_expected=packets_expected,
            packets_received=packets_received,
        )

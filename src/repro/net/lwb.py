"""Low-power Wireless Bus (LWB) round engine.

LWB turns a multi-hop network into a logical shared bus: a coordinator
(host) schedules periodic communication rounds.  A round starts with a
control slot in which the coordinator floods the schedule (and, in
Dimmer, the new retransmission parameter or a forwarder-selection
command); a series of data slots follows, one per scheduled source,
each executed as a Glossy flood.

Nodes that fail to decode the schedule are unsynchronized for that
round: they cannot participate in the data slots, miss every packet and
keep their radio on trying to re-synchronize — which is exactly why
plain LWB's energy consumption rises under interference (§V-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.net.channels import ChannelHopper
from repro.net.glossy import FloodResult, GlossyFlood
from repro.net.interference import InterferenceSource, NoInterference
from repro.net.link import LinkModel
from repro.net.node import Node, NodeRole, NodeStateArray
from repro.net.packet import (
    DEFAULT_PACKET_BYTES,
    DataPacket,
    DimmerFeedbackHeader,
    SchedulePacket,
)
from repro.net.radio import RadioModel
from repro.net.topology import Topology


@dataclass(frozen=True)
class Schedule:
    """Round schedule computed by the coordinator.

    Attributes
    ----------
    round_index:
        Monotonically increasing round counter.
    n_tx:
        Global retransmission parameter to apply for this round.
    slots:
        Source node of each data slot, in slot order.
    forwarder_selection:
        When True, the coordinator signals an interference-free round in
        which the designated ``learning_node`` may run its local
        multi-armed bandit learning step.
    learning_node:
        Node allowed to (re)draw its forwarder/passive role this round.
    """

    round_index: int
    n_tx: int
    slots: Sequence[int]
    forwarder_selection: bool = False
    learning_node: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_tx < 0:
            raise ValueError("n_tx must be non-negative")

    def to_packet(self, coordinator: int) -> SchedulePacket:
        """Serialize the schedule into its control-slot packet."""
        return SchedulePacket(
            source=coordinator,
            n_tx=self.n_tx,
            slots=tuple(self.slots),
            forwarder_selection=self.forwarder_selection,
            learning_node=self.learning_node,
            round_index=self.round_index,
        )


@dataclass(frozen=True)
class SlotResult:
    """Outcome of one data slot."""

    slot_index: int
    source: int
    channel: int
    flood: FloodResult
    feedback: Optional[DimmerFeedbackHeader] = None
    acknowledged: bool = True

    @property
    def reliability(self) -> float:
        """Fraction of destinations that received the slot's packet."""
        return self.flood.reliability


class RoundResult:
    """Outcome of a full LWB/Dimmer round.

    Per-node aggregates are array-backed (aligned with
    :attr:`node_ids`); the dict attributes of the original API —
    ``synchronized``, ``radio_on_ms``, ``packets_expected``,
    ``packets_received`` — are lazy views materialized on first access.
    Results can equivalently be built from per-node dicts.
    """

    __slots__ = (
        "round_index",
        "schedule",
        "start_ms",
        "control_flood",
        "slots",
        "node_ids",
        "_sync_arr",
        "_radio_arr",
        "_expected_arr",
        "_received_arr",
        "_sync_map",
        "_radio_map",
        "_expected_map",
        "_received_map",
    )

    def __init__(
        self,
        round_index: int,
        schedule: Schedule,
        start_ms: float,
        control_flood: FloodResult,
        slots: List[SlotResult],
        synchronized: Union[Dict[int, bool], np.ndarray],
        radio_on_ms: Union[Dict[int, float], np.ndarray, None] = None,
        packets_expected: Union[Dict[int, int], np.ndarray, None] = None,
        packets_received: Union[Dict[int, int], np.ndarray, None] = None,
        node_ids: Optional[Sequence[int]] = None,
    ) -> None:
        self.round_index = round_index
        self.schedule = schedule
        self.start_ms = start_ms
        self.control_flood = control_flood
        self.slots = slots
        if isinstance(synchronized, np.ndarray):
            if node_ids is None:
                raise ValueError("node_ids is required for array-backed construction")
            self.node_ids = tuple(node_ids)
            n = len(self.node_ids)
            self._sync_arr = np.asarray(synchronized, dtype=bool)
            self._radio_arr = (
                np.zeros(n) if radio_on_ms is None else np.asarray(radio_on_ms, dtype=float)
            )
            self._expected_arr = (
                np.zeros(n, dtype=np.int64)
                if packets_expected is None
                else np.asarray(packets_expected, dtype=np.int64)
            )
            self._received_arr = (
                np.zeros(n, dtype=np.int64)
                if packets_received is None
                else np.asarray(packets_received, dtype=np.int64)
            )
            self._sync_map = None
            self._radio_map = None
            self._expected_map = None
            self._received_map = None
        else:
            self.node_ids = tuple(synchronized)
            self._sync_map = dict(synchronized)
            self._radio_map = dict(radio_on_ms) if radio_on_ms is not None else {}
            self._expected_map = dict(packets_expected) if packets_expected is not None else {}
            self._received_map = dict(packets_received) if packets_received is not None else {}
            self._sync_arr = None
            self._radio_arr = None
            self._expected_arr = None
            self._received_arr = None

    # ------------------------------------------------------------------
    # Array accessors
    # ------------------------------------------------------------------
    def _from_map(self, mapping: Dict[int, float], dtype) -> np.ndarray:
        return np.fromiter(
            (mapping.get(node, 0) for node in self.node_ids),
            dtype=dtype,
            count=len(self.node_ids),
        )

    @property
    def synchronized_array(self) -> np.ndarray:
        """Per-node sync flags in :attr:`node_ids` order."""
        if self._sync_arr is None:
            self._sync_arr = self._from_map(self._sync_map, bool)
        return self._sync_arr

    @property
    def radio_on_array(self) -> np.ndarray:
        """Per-node whole-round radio-on totals in :attr:`node_ids` order."""
        if self._radio_arr is None:
            self._radio_arr = self._from_map(self._radio_map, float)
        return self._radio_arr

    @property
    def packets_expected_array(self) -> np.ndarray:
        """Per-node expected-packet counts in :attr:`node_ids` order."""
        if self._expected_arr is None:
            self._expected_arr = self._from_map(self._expected_map, np.int64)
        return self._expected_arr

    @property
    def packets_received_array(self) -> np.ndarray:
        """Per-node received-packet counts in :attr:`node_ids` order."""
        if self._received_arr is None:
            self._received_arr = self._from_map(self._received_map, np.int64)
        return self._received_arr

    # ------------------------------------------------------------------
    # Dict views (API-compatibility shims)
    # ------------------------------------------------------------------
    @property
    def synchronized(self) -> Dict[int, bool]:
        """Per-node flag: did the node decode this round's schedule?"""
        if self._sync_map is None:
            self._sync_map = dict(zip(self.node_ids, self._sync_arr.tolist()))
        return self._sync_map

    @property
    def radio_on_ms(self) -> Dict[int, float]:
        """Whole-round radio-on time of each node."""
        if self._radio_map is None:
            self._radio_map = dict(zip(self.node_ids, self._radio_arr.tolist()))
        return self._radio_map

    @property
    def packets_expected(self) -> Dict[int, int]:
        """Packets each node was scheduled to receive this round."""
        if self._expected_map is None:
            self._expected_map = dict(zip(self.node_ids, self._expected_arr.tolist()))
        return self._expected_map

    @property
    def packets_received(self) -> Dict[int, int]:
        """Packets each node actually received this round."""
        if self._received_map is None:
            self._received_map = dict(zip(self.node_ids, self._received_arr.tolist()))
        return self._received_map

    # ------------------------------------------------------------------
    # Scalar accessors (no dict materialization)
    # ------------------------------------------------------------------
    def _position(self, node: int) -> int:
        """Array index of ``node``, or ``-1`` when absent."""
        try:
            return self.node_ids.index(node)
        except ValueError:
            return -1

    def packets_expected_at(self, node: int) -> int:
        """Expected-packet count of one node (0 when unknown).

        A materialized ``packets_expected`` view wins once it exists
        (views are the mutable face of the result).
        """
        if self._expected_map is not None:
            return self._expected_map.get(node, 0)
        position = self._position(node)
        return int(self._expected_arr[position]) if position >= 0 else 0

    def packets_received_at(self, node: int) -> int:
        """Received-packet count of one node (0 when unknown)."""
        if self._received_map is not None:
            return self._received_map.get(node, 0)
        position = self._position(node)
        return int(self._received_arr[position]) if position >= 0 else 0

    def radio_on_at(self, node: int) -> float:
        """Whole-round radio-on time of one node (0.0 when unknown)."""
        if self._radio_map is not None:
            return self._radio_map.get(node, 0.0)
        position = self._position(node)
        return float(self._radio_arr[position]) if position >= 0 else 0.0

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes accounted for in this round."""
        return len(self.node_ids)

    @property
    def reliability(self) -> float:
        """Network-wide reliability: received / expected over all destinations."""
        expected = int(self.packets_expected_array.sum())
        if expected == 0:
            return 1.0
        return int(self.packets_received_array.sum()) / expected

    @property
    def had_losses(self) -> bool:
        """True when at least one scheduled packet was missed by a destination."""
        return self.reliability < 1.0

    def per_node_reliability(self) -> Dict[int, float]:
        """Reliability of each node over this round's data slots."""
        expected = self.packets_expected_array
        received = self.packets_received_array
        values = np.divide(
            received, expected, out=np.ones(len(self.node_ids)), where=expected > 0
        )
        return dict(zip(self.node_ids, values.tolist()))

    @property
    def average_radio_on_ms(self) -> float:
        """Radio-on time per slot, averaged over all nodes and slots of the round."""
        num_slots = len(self.slots) + 1  # control slot included
        if len(self.node_ids) == 0 or num_slots == 0:
            return 0.0
        return float(self.radio_on_array.mean()) / num_slots

    def per_node_radio_on_ms(self) -> Dict[int, float]:
        """Per-slot radio-on time of each node, averaged over this round."""
        num_slots = len(self.slots) + 1
        return dict(zip(self.node_ids, (self.radio_on_array / num_slots).tolist()))


#: Alias kept for API clarity: a "round" object is its result.
LWBRound = RoundResult


def build_observer_view(
    result: RoundResult,
    observer: int,
    expected_nodes: Optional[Sequence[int]] = None,
    pessimistic_radio_on_ms: float = 20.0,
) -> Dict[str, Dict[int, float]]:
    """Reconstruct what ``observer`` legitimately knows after a round.

    Dimmer closes its feedback loop through the two-byte headers carried
    by data packets: an observer only knows the performance of nodes
    whose packet it received this round; every other scheduled node is
    filled in pessimistically (0 % reliability, 100 % radio-on time) and
    reported under ``"missing"``.  The observer's own statistics are
    exact.  This helper is shared by the coordinator-side statistics
    collector, the trace recorder (so training data has the same
    distribution as deployment inputs) and the simulation training
    environment.

    Returns a dict with keys ``"reliability"``, ``"radio_on_ms"`` and
    ``"missing"`` (the latter mapping node -> 1.0 markers).
    """
    node_ids, rel_arr, radio_arr, missing_mask = observer_view_arrays(
        result,
        observer,
        expected_nodes=expected_nodes,
        pessimistic_radio_on_ms=pessimistic_radio_on_ms,
    )
    missing = {
        node: 1.0 for node, flag in zip(node_ids, missing_mask.tolist()) if flag
    }
    return {
        "reliability": dict(zip(node_ids, rel_arr.tolist())),
        "radio_on_ms": dict(zip(node_ids, radio_arr.tolist())),
        "missing": missing,
    }


def observer_view_arrays(
    result: RoundResult,
    observer: int,
    expected_nodes: Optional[Sequence[int]] = None,
    pessimistic_radio_on_ms: float = 20.0,
) -> "Tuple[List[int], np.ndarray, np.ndarray, np.ndarray]":
    """Array-backed :func:`build_observer_view`.

    Returns ``(node_ids, reliabilities, radio_on_ms, missing_mask)``
    with the arrays aligned to the sorted ``node_ids`` list; the values
    equal the dict variant element for element.  This is what the
    statistics collector builds its :class:`~repro.core.statistics.GlobalView`
    from without any per-node dict bookkeeping.
    """
    received_feedback: Dict[int, DimmerFeedbackHeader] = {}
    for slot in result.slots:
        if slot.feedback is None:
            continue
        if slot.source == observer or slot.flood.received_at(observer):
            received_feedback[slot.source] = slot.feedback

    scheduled = set(result.schedule.slots)
    if expected_nodes is not None:
        scheduled &= set(expected_nodes)
    scheduled.add(observer)
    node_ids = sorted(scheduled)
    count = len(node_ids)

    # Pessimistic defaults, then overlay the received headers, then the
    # observer's own exact statistics — same precedence as the dict path.
    rel_arr = np.zeros(count)
    radio_arr = np.full(count, pessimistic_radio_on_ms)
    missing_mask = np.ones(count, dtype=bool)
    nodes_arr = np.array(node_ids, dtype=np.int64)
    if received_feedback:
        fb_ids = np.fromiter(received_feedback, dtype=np.int64, count=len(received_feedback))
        positions = np.searchsorted(nodes_arr, fb_ids)
        valid = (positions < count) & (nodes_arr[np.minimum(positions, count - 1)] == fb_ids)
        rows = positions[valid]
        headers = list(received_feedback.values())
        rel_arr[rows] = np.fromiter(
            (h.reliability for h, ok in zip(headers, valid.tolist()) if ok),
            dtype=float,
            count=int(valid.sum()),
        )
        radio_arr[rows] = np.fromiter(
            (h.radio_on_ms for h, ok in zip(headers, valid.tolist()) if ok),
            dtype=float,
            count=int(valid.sum()),
        )
        missing_mask[rows] = False

    num_slots = len(result.slots) + 1
    observer_row = int(np.searchsorted(nodes_arr, observer))
    expected = result.packets_expected_at(observer)
    received = result.packets_received_at(observer)
    rel_arr[observer_row] = 1.0 if expected == 0 else received / expected
    radio_arr[observer_row] = result.radio_on_at(observer) / num_slots
    missing_mask[observer_row] = False
    return node_ids, rel_arr, radio_arr, missing_mask


class LWBRoundEngine:
    """Executes LWB rounds slot by slot on top of Glossy floods.

    Parameters
    ----------
    topology:
        Deployment to run over.
    link_model, radio:
        Link-quality and radio models (defaults derived from the topology).
    hopper:
        Channel hopper; disable it (``ChannelHopper(enabled=False)``) for
        the single-channel LWB baseline.
    slot_ms:
        Maximum duration of a slot (20 ms in the paper).
    slot_gap_ms:
        Processing gap between consecutive slots.
    packet_bytes:
        Application packet size (30 bytes in the paper).
    rng:
        Random generator shared by all floods of this engine.
    engine:
        Flood engine implementation (``"scalar"`` reference,
        ``"vectorized"``, or ``"vectorized-log"`` — the log-domain
        matmul reception kernel for 1000+ node topologies; see
        :class:`~repro.net.glossy.GlossyFlood`).  The batched data-slot
        phase loop of the store round path is what the engine choice
        accelerates; :attr:`flood` exposes the underlying
        :class:`~repro.net.glossy.GlossyFlood` (benchmarks re-select
        its ``reception_kernel`` for in-run reference ratios).
    """

    def __init__(
        self,
        topology: Topology,
        link_model: Optional[LinkModel] = None,
        radio: Optional[RadioModel] = None,
        hopper: Optional[ChannelHopper] = None,
        slot_ms: float = 20.0,
        slot_gap_ms: float = 2.0,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
        rng: Optional[np.random.Generator] = None,
        engine: str = "scalar",
    ) -> None:
        if slot_ms <= 0:
            raise ValueError("slot_ms must be positive")
        self.topology = topology
        self.link_model = link_model if link_model is not None else LinkModel(topology)
        self.radio = radio if radio is not None else RadioModel()
        self.hopper = hopper if hopper is not None else ChannelHopper()
        self.slot_ms = slot_ms
        self.slot_gap_ms = slot_gap_ms
        self.packet_bytes = packet_bytes
        self.rng = rng if rng is not None else np.random.default_rng()
        self._flood = GlossyFlood(topology, self.link_model, self.radio, self.rng, engine=engine)

    @property
    def flood(self) -> GlossyFlood:
        """The flood engine executing this round engine's slots."""
        return self._flood

    @property
    def engine(self) -> str:
        """Name of the flood engine implementation in use."""
        return self._flood.engine

    def round_airtime_ms(self, num_data_slots: int) -> float:
        """Total on-air duration of a round with ``num_data_slots`` data slots."""
        slots = num_data_slots + 1
        return slots * self.slot_ms + max(0, slots - 1) * self.slot_gap_ms

    def _slot_start_ms(self, round_start_ms: float, slot_index: int) -> float:
        """Global start time of slot ``slot_index`` (0 = control slot)."""
        return round_start_ms + slot_index * (self.slot_ms + self.slot_gap_ms)

    def run_round(
        self,
        nodes: Mapping[int, Node],
        schedule: Schedule,
        start_ms: float = 0.0,
        interference: Optional[InterferenceSource] = None,
        collect_feedback: bool = True,
        destinations: Optional[Sequence[int]] = None,
    ) -> RoundResult:
        """Execute one LWB round.

        Parameters
        ----------
        nodes:
            Node state keyed by id; their roles and ``n_tx`` values are
            read (passive receivers flood with ``N_TX = 0``), and their
            statistics and overheard feedback are updated in place.  A
            :class:`~repro.net.node.NodeStateArray` aligned with the
            topology order (what every simulator owns) drives the whole
            round with masked vector operations; any other mapping of
            ``Node`` objects takes the per-node reference path.
        schedule:
            The schedule computed by the coordinator for this round.
        start_ms:
            Round start on the global clock.
        interference:
            Interference source active during the round.
        collect_feedback:
            When True, data packets carry the source's Dimmer feedback
            header and receivers record it (Dimmer); when False, packets
            are plain LWB packets.
        destinations:
            When given, reliability is only accounted at these nodes
            (the D-Cube data-collection scenario has a single sink);
            ``None`` means broadcast semantics (every node is a
            destination of every packet).
        """
        interference = interference if interference is not None else NoInterference()
        if (
            isinstance(nodes, NodeStateArray)
            and nodes.node_ids == self._flood.node_ids
        ):
            return self._run_round_store(
                nodes, schedule, start_ms, interference, collect_feedback, destinations
            )
        return self._run_round_nodes(
            nodes, schedule, start_ms, interference, collect_feedback, destinations
        )

    def _run_round_store(
        self,
        store: NodeStateArray,
        schedule: Schedule,
        start_ms: float,
        interference: InterferenceSource,
        collect_feedback: bool,
        destinations: Optional[Sequence[int]],
    ) -> RoundResult:
        """Array round path: no per-node Python calls anywhere.

        Equivalent to :meth:`_run_round_nodes` over the store's views —
        and bit-for-bit identical to it under a fixed seed (the
        fingerprint test pins this) — but every per-node update is a
        masked vector operation: the schedule's ``n_tx`` broadcasts
        through the synchronized mask, ``effective_n_tx`` is a
        ``where`` over the role codes, each data slot scatters the
        source's feedback header into the ``(N, N)`` tables with one
        fancy index, and the end-of-round ``record_slot`` for all nodes
        is a single vectorized counter update.
        """
        coordinator = self.topology.coordinator
        index = self.link_model.node_index
        node_ids = store.node_ids
        n = len(node_ids)

        # --- Control slot: flood the schedule from the coordinator. -----
        control_channel = self.hopper.control_channel()
        control_packet = schedule.to_packet(coordinator)
        control_flood = self._flood.run(
            initiator=coordinator,
            n_tx=max(schedule.n_tx, 1),
            packet_bytes=control_packet.total_bytes,
            channel=control_channel,
            start_ms=self._slot_start_ms(start_ms, 0),
            interference=interference,
            participants=None,
            max_slot_ms=self.slot_ms,
        )
        synchronized = control_flood.received_array.copy()
        radio_on = control_flood.radio_on_array.copy()
        synchronized[index[coordinator]] = True

        # Synchronized nodes apply the new retransmission parameter
        # immediately after the control slot; roles and n_tx stay
        # constant for the rest of the round.
        store.synchronized[:] = synchronized
        store.apply_n_tx_where(synchronized, schedule.n_tx)
        effective_n_tx = store.effective_n_tx()

        packets_expected = np.zeros(n, dtype=np.int64)
        packets_received = np.zeros(n, dtype=np.int64)
        if destinations is not None:
            destination_mask = np.zeros(n, dtype=bool)
            for node in destinations:
                destination_mask[index[node]] = True
        else:
            destination_mask = np.ones(n, dtype=bool)

        # --- Data slots. -------------------------------------------------
        # The synchronized set is fixed for the rest of the round, so the
        # executed (synced-source) floods are known upfront and run as
        # one batched phase loop; empty slots (source missed the
        # schedule) only contribute accounting.
        slot_channels = [self.hopper.data_channel(i) for i in range(len(schedule.slots))]
        executed = [
            (slot_index, source)
            for slot_index, source in enumerate(schedule.slots)
            if synchronized[index[source]]
        ]
        floods = self._flood.run_batch(
            initiators=[source for _, source in executed],
            n_tx=effective_n_tx,
            packet_bytes=DataPacket(source=coordinator).total_bytes,
            channels=[slot_channels[slot_index] for slot_index, _ in executed],
            start_times=[
                self._slot_start_ms(start_ms, slot_index + 1) for slot_index, _ in executed
            ],
            interference=interference,
            participants=synchronized,
            max_slot_ms=self.slot_ms,
        )
        flood_by_slot = {slot_index: flood for (slot_index, _), flood in zip(executed, floods)}

        # Whole-round reliability accounting in a handful of integer
        # vector operations (integer adds commute, so batching across
        # slots is exact):  every slot expects one packet at every
        # destination except its own source; receptions count wherever a
        # destination's row in the batched reception table is set.
        num_data_slots = len(schedule.slots)
        source_rows_all = np.fromiter(
            (index[source] for source in schedule.slots), dtype=np.int64, count=num_data_slots
        )
        packets_expected += num_data_slots * destination_mask
        np.subtract.at(
            packets_expected,
            source_rows_all[destination_mask[source_rows_all]],
            1,
        )
        sync_rows = np.flatnonzero(synchronized)
        if executed:
            received_table = np.zeros((len(executed), n), dtype=bool)
            received_table[:, sync_rows] = np.stack(
                [flood.received_array for flood in floods]
            )
            # Per-slot radio-on, scattered into full-network rows in one
            # batched assignment (unsynchronized nodes listen the whole
            # slot); the += below still walks the rows in slot order so
            # the float accumulation stays bit-identical.
            radio_table = np.full((len(executed), n), self.slot_ms)
            radio_table[:, sync_rows] = np.stack([flood.radio_on_array for flood in floods])
            packets_received += (received_table & destination_mask).sum(axis=0)
            executed_rows = np.fromiter(
                (index[source] for _, source in executed), dtype=np.int64, count=len(executed)
            )
            # Sources always decode their own slot; remove their
            # self-counts (a source is not a destination of its slot).
            np.subtract.at(
                packets_received,
                executed_rows[destination_mask[executed_rows]],
                1,
            )

        slot_results: List[SlotResult] = []
        executed_index = 0
        feedback_headers: List[Optional[DimmerFeedbackHeader]] = []
        for slot_index, source in enumerate(schedule.slots):
            channel = slot_channels[slot_index]
            flood = flood_by_slot.get(slot_index)
            if flood is None:
                # The source missed the schedule: the slot stays empty.
                # Synchronized nodes still listen for the announced packet
                # and unsynchronized ones listen trying to re-sync.
                radio_on += self.slot_ms
                empty = FloodResult.empty(
                    initiator=source,
                    node_ids=node_ids,
                    slot_duration_ms=self.slot_ms,
                    channel=channel,
                    radio_on_ms=self.slot_ms,
                )
                slot_results.append(
                    SlotResult(slot_index=slot_index, source=source, channel=channel, flood=empty)
                )
                continue

            feedback = store.feedback_for(index[source]) if collect_feedback else None
            feedback_headers.append(feedback)
            radio_on += radio_table[executed_index]
            executed_index += 1

            slot_results.append(
                SlotResult(
                    slot_index=slot_index,
                    source=source,
                    channel=channel,
                    flood=flood,
                    feedback=feedback,
                )
            )

        if collect_feedback and executed:
            # Scatter every executed slot's feedback header into the
            # overheard-feedback tables at once.  When the executed
            # sources are all distinct (the normal schedule shape) the
            # (receiver, source) targets never collide, so one fancy
            # scatter per table is exact; duplicate sources fall back to
            # the per-slot order-preserving writes.
            executed_cols = np.fromiter(
                (index[source] for _, source in executed),
                dtype=np.int64,
                count=len(executed),
            )
            if len(set(executed_cols.tolist())) == len(executed):
                slot_rows, receiver_rows = np.nonzero(received_table)
                target_cols = executed_cols[slot_rows]
                radio_values = np.array([h.radio_on_ms for h in feedback_headers])
                reliability_values = np.array([h.reliability for h in feedback_headers])
                store.feedback_radio_on[receiver_rows, target_cols] = radio_values[slot_rows]
                store.feedback_reliability[receiver_rows, target_cols] = (
                    reliability_values[slot_rows]
                )
                store.feedback_valid[receiver_rows, target_cols] = True
            else:
                for position, (_, source) in enumerate(executed):
                    store.observe_feedback_rows(
                        received_table[position], index[source], feedback_headers[position]
                    )

        # Update the per-node statistics used for the feedback headers of
        # the *next* round in one batched counter update.
        num_slots = len(schedule.slots) + 1
        store.record_round_statistics(
            packets_expected, packets_received, radio_on / num_slots
        )

        self.hopper.advance_round(len(schedule.slots))

        return RoundResult(
            round_index=schedule.round_index,
            schedule=schedule,
            start_ms=start_ms,
            control_flood=control_flood,
            slots=slot_results,
            synchronized=synchronized,
            radio_on_ms=radio_on,
            packets_expected=packets_expected,
            packets_received=packets_received,
            node_ids=node_ids,
        )

    def _run_round_nodes(
        self,
        nodes: Mapping[int, Node],
        schedule: Schedule,
        start_ms: float,
        interference: InterferenceSource,
        collect_feedback: bool,
        destinations: Optional[Sequence[int]],
    ) -> RoundResult:
        """Reference round path over arbitrary ``Node`` mappings."""
        coordinator = self.topology.coordinator
        all_ids = list(nodes.keys())
        n = len(all_ids)
        # The engine's array order is the topology (matrix) order; when
        # the caller's node set matches it — every simulator does — the
        # whole round aggregates with NumPy vectors and no per-node dict
        # bookkeeping.
        aligned = tuple(all_ids) == self._flood.node_ids
        ids_arr = np.array(all_ids, dtype=np.int64)
        pos = {node: i for i, node in enumerate(all_ids)}

        # --- Control slot: flood the schedule from the coordinator. -----
        control_channel = self.hopper.control_channel()
        control_packet = schedule.to_packet(coordinator)
        control_flood = self._flood.run(
            initiator=coordinator,
            n_tx=max(schedule.n_tx, 1),
            packet_bytes=control_packet.total_bytes,
            channel=control_channel,
            start_ms=self._slot_start_ms(start_ms, 0),
            interference=interference,
            participants=None if aligned else all_ids,
            max_slot_ms=self.slot_ms,
        )
        if aligned:
            synchronized = control_flood.received_array.copy()
            radio_on = control_flood.radio_on_array.copy()
        else:
            synchronized = np.zeros(n, dtype=bool)
            radio_on = np.full(n, self.slot_ms)
            self._scatter(control_flood, pos, synchronized, radio_on)
        synchronized[pos[coordinator]] = True

        # Synchronized nodes apply the new retransmission parameter
        # immediately after the control slot.
        sync_list = synchronized.tolist()
        for i, node_id in enumerate(all_ids):
            nodes[node_id].synchronized = sync_list[i]
        for node_id in ids_arr[synchronized].tolist():
            nodes[node_id].apply_n_tx(schedule.n_tx)
        # Per-node retransmission budget for the data slots (constant for
        # the rest of the round: roles and n_tx only change between
        # rounds or at the control slot handled above).
        effective_n_tx = np.fromiter(
            (nodes[node_id].effective_n_tx for node_id in all_ids),
            dtype=np.int64,
            count=n,
        )

        packets_expected = np.zeros(n, dtype=np.int64)
        packets_received = np.zeros(n, dtype=np.int64)
        if destinations is not None:
            destination_mask = np.zeros(n, dtype=bool)
            for node in destinations:
                destination_mask[pos[node]] = True
        else:
            destination_mask = np.ones(n, dtype=bool)

        # --- Data slots. -------------------------------------------------
        slot_results: List[SlotResult] = []
        sync_rows = np.flatnonzero(synchronized)
        for slot_index, source in enumerate(schedule.slots):
            channel = self.hopper.data_channel(slot_index)
            slot_start = self._slot_start_ms(start_ms, slot_index + 1)
            source_pos = pos[source]
            slot_destinations = destination_mask.copy()
            slot_destinations[source_pos] = False

            if not synchronized[source_pos]:
                # The source missed the schedule: the slot stays empty.
                # Synchronized nodes still listen for the announced packet
                # and unsynchronized ones listen trying to re-sync.
                radio_on += self.slot_ms
                packets_expected[slot_destinations] += 1
                empty = FloodResult.empty(
                    initiator=source,
                    node_ids=all_ids,
                    slot_duration_ms=self.slot_ms,
                    channel=channel,
                    radio_on_ms=self.slot_ms,
                )
                slot_results.append(
                    SlotResult(slot_index=slot_index, source=source, channel=channel, flood=empty)
                )
                continue

            flood = self._flood.run(
                initiator=source,
                n_tx=effective_n_tx if aligned else {
                    node: int(effective_n_tx[pos[node]]) for node in ids_arr[synchronized].tolist()
                },
                packet_bytes=DataPacket(source=source).total_bytes,
                channel=channel,
                start_ms=slot_start,
                interference=interference,
                participants=synchronized if aligned else ids_arr[synchronized].tolist(),
                max_slot_ms=self.slot_ms,
            )

            feedback = nodes[source].statistics.to_feedback() if collect_feedback else None
            # Participants contribute their measured radio-on time;
            # unsynchronized nodes keep listening the whole slot.
            slot_radio = np.full(n, self.slot_ms)
            received_full = np.zeros(n, dtype=bool)
            if aligned:
                slot_radio[sync_rows] = flood.radio_on_array
                received_full[sync_rows] = flood.received_array
            else:
                self._scatter(flood, pos, received_full, slot_radio)
            radio_on += slot_radio
            packets_expected[slot_destinations] += 1
            packets_received[slot_destinations & received_full] += 1
            if collect_feedback and feedback is not None:
                for node_id in ids_arr[received_full].tolist():
                    nodes[node_id].observe_feedback(source, feedback)

            slot_results.append(
                SlotResult(
                    slot_index=slot_index,
                    source=source,
                    channel=channel,
                    flood=flood,
                    feedback=feedback,
                )
            )

        # Update the per-node statistics used for the feedback headers of
        # the *next* round: reliability reflects this round's outcome,
        # radio-on time is a rolling average over the last few rounds
        # ("averaged over the last floods" in the paper).
        num_slots = len(schedule.slots) + 1
        expected_list = packets_expected.tolist()
        received_list = packets_received.tolist()
        per_slot_list = (radio_on / num_slots).tolist()
        for i, node_id in enumerate(all_ids):
            statistics = nodes[node_id].statistics
            statistics.packets_expected = expected_list[i]
            statistics.packets_received = received_list[i]
            statistics.radio_on.record_slot(per_slot_list[i])

        self.hopper.advance_round(len(schedule.slots))

        return RoundResult(
            round_index=schedule.round_index,
            schedule=schedule,
            start_ms=start_ms,
            control_flood=control_flood,
            slots=slot_results,
            synchronized=synchronized,
            radio_on_ms=radio_on,
            packets_expected=packets_expected,
            packets_received=packets_received,
            node_ids=all_ids,
        )

    @staticmethod
    def _scatter(
        flood: FloodResult,
        pos: Dict[int, int],
        received_out: np.ndarray,
        radio_out: np.ndarray,
    ) -> None:
        """Scatter a flood's per-participant vectors into round order.

        Fallback for callers whose node ordering differs from the
        topology (matrix) order; entries of nodes absent from the flood
        are left at their pre-filled defaults.
        """
        received = flood.received_array.tolist()
        radio = flood.radio_on_array.tolist()
        for i, node in enumerate(flood.node_ids):
            received_out[pos[node]] = received[i]
            radio_out[pos[node]] = radio[i]
